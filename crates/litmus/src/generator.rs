//! Systematic litmus-test generation: classic two-thread shapes crossed
//! with every applicable fence/dependency/access-strength *link* per edge
//! — the diy-style suites used to validate the models against each other
//! at scale (the paper runs ~6,500 ARM and ~7,000 RISC-V tests, §7).

use crate::test::{Condition, LitmusTest, Pred, Quantifier};
use promising_core::parser::LocTable;
use promising_core::stmt::{CodeBuilder, RmwOp};
use promising_core::{Arch, Expr, Fence, Loc, Program, ReadKind, Reg, StmtId, Val, WriteKind};
use std::collections::BTreeMap;
use std::sync::Arc;

/// The direction of one access in a shape.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Dir {
    R,
    W,
}

/// A way of strengthening the edge between a thread's two accesses.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Link {
    /// Plain program order.
    Po,
    /// A fence between the accesses.
    Fence(Fence),
    /// ARM `isb` alone (no control dependency — weak).
    Isb,
    /// Address dependency from the first (read) to the second.
    Addr,
    /// Data dependency from the first (read) to the second (write).
    Data,
    /// Control dependency (branch on the first read).
    Ctrl,
    /// Control dependency plus `isb` (ARM only).
    CtrlIsb,
    /// Strengthen the first load to acquire.
    Acq,
    /// Strengthen the first load to weak acquire.
    WAcq,
    /// Strengthen the second store to release.
    Rel,
    /// Strengthen the second store to weak release.
    WRel,
    /// Perform the first (read) access as a plain RMW read:
    /// `r = amo_add(loc, 0)` — reads the value and re-publishes it.
    AmoRead,
    /// Perform the first (read) access as an *acquire* RMW read.
    AmoReadAcq,
    /// Perform the second (write) access as an atomic swap.
    SwpWrite,
    /// Perform the second (write) access as a *release* atomic swap.
    SwpWriteRel,
    /// Perform the second (write) access as a CAS expecting the initial
    /// value 0 (may fail if the location was already overwritten).
    CasWrite,
}

impl Link {
    fn name(self) -> String {
        match self {
            Link::Po => "po".into(),
            Link::Fence(f) => match f {
                Fence::FULL => "dmb.sy".into(),
                Fence::LD => "dmb.ld".into(),
                Fence::ST => "dmb.st".into(),
                Fence { pre, post } => format!("fence.{}.{}", set_name(pre), set_name(post)),
            },
            Link::Isb => "isb".into(),
            Link::Addr => "addr".into(),
            Link::Data => "data".into(),
            Link::Ctrl => "ctrl".into(),
            Link::CtrlIsb => "ctrl-isb".into(),
            Link::Acq => "acq".into(),
            Link::WAcq => "wacq".into(),
            Link::Rel => "rel".into(),
            Link::WRel => "wrel".into(),
            Link::AmoRead => "amoadd".into(),
            Link::AmoReadAcq => "amoadd.acq".into(),
            Link::SwpWrite => "swp".into(),
            Link::SwpWriteRel => "swp.rel".into(),
            Link::CasWrite => "cas".into(),
        }
    }

    /// Is this link applicable between accesses of the given directions?
    fn applicable(self, first: Dir, second: Dir) -> bool {
        match self {
            Link::Po | Link::Fence(_) | Link::Isb => true,
            Link::Addr => first == Dir::R,
            Link::Data => first == Dir::R && second == Dir::W,
            Link::Ctrl | Link::CtrlIsb => first == Dir::R,
            Link::Acq | Link::WAcq => first == Dir::R,
            Link::Rel | Link::WRel => second == Dir::W,
            Link::AmoRead | Link::AmoReadAcq => first == Dir::R,
            Link::SwpWrite | Link::SwpWriteRel | Link::CasWrite => second == Dir::W,
        }
    }
}

fn set_name(a: promising_core::AccessSet) -> &'static str {
    match a {
        promising_core::AccessSet::R => "r",
        promising_core::AccessSet::W => "w",
        promising_core::AccessSet::RW => "rw",
    }
}

/// The links exercised for an architecture.
pub fn links_for(arch: Arch) -> Vec<Link> {
    match arch {
        Arch::Arm => vec![
            Link::Po,
            Link::Fence(Fence::FULL),
            Link::Fence(Fence::LD),
            Link::Fence(Fence::ST),
            Link::Isb,
            Link::Addr,
            Link::Data,
            Link::Ctrl,
            Link::CtrlIsb,
            Link::Acq,
            Link::WAcq,
            Link::Rel,
            Link::AmoRead,
            Link::AmoReadAcq,
            Link::SwpWrite,
            Link::SwpWriteRel,
            Link::CasWrite,
        ],
        Arch::RiscV => vec![
            Link::Po,
            Link::Fence(Fence::FULL),
            Link::Fence(Fence::LD),
            Link::Fence(Fence::ST),
            Link::Fence(Fence::WR),
            Link::Fence(Fence::RR),
            Link::Fence(Fence::RWW),
            Link::Addr,
            Link::Data,
            Link::Ctrl,
            Link::Acq,
            Link::Rel,
            Link::WRel,
            Link::AmoRead,
            Link::AmoReadAcq,
            Link::SwpWrite,
            Link::SwpWriteRel,
            Link::CasWrite,
        ],
    }
}

/// The RMW links: handy for filtering/striding the RMW cross of a suite.
pub const RMW_LINKS: [Link; 5] = [
    Link::AmoRead,
    Link::AmoReadAcq,
    Link::SwpWrite,
    Link::SwpWriteRel,
    Link::CasWrite,
];

impl Link {
    /// Whether the link performs one of its accesses as an RMW.
    pub fn is_rmw(self) -> bool {
        RMW_LINKS.contains(&self)
    }
}

/// One access of a shape: direction, location index, value written or
/// register index reading.
#[derive(Clone, Copy, Debug)]
struct Access {
    dir: Dir,
    /// Location index (0 = x, 1 = y).
    loc: usize,
    /// For writes: the value; for reads: ignored.
    val: i64,
}

/// A two-thread shape: two accesses per thread plus the exists-condition.
struct Shape {
    name: &'static str,
    threads: [[Access; 2]; 2],
    /// Condition atoms: register observations `(tid, reg, val)` and final
    /// memory constraints `(loc index, val)`.
    reg_conds: &'static [(usize, u32, i64)],
    mem_conds: &'static [(usize, i64)],
}

const R_: fn(usize) -> Access = |loc| Access {
    dir: Dir::R,
    loc,
    val: 0,
};
const fn w(loc: usize, val: i64) -> Access {
    Access {
        dir: Dir::W,
        loc,
        val,
    }
}

fn shapes() -> Vec<Shape> {
    vec![
        Shape {
            name: "MP",
            threads: [[w(0, 1), w(1, 1)], [R_(1), R_(0)]],
            reg_conds: &[(1, 1, 1), (1, 2, 0)],
            mem_conds: &[],
        },
        Shape {
            name: "SB",
            threads: [[w(0, 1), R_(1)], [w(1, 1), R_(0)]],
            reg_conds: &[(0, 2, 0), (1, 2, 0)],
            mem_conds: &[],
        },
        Shape {
            name: "LB",
            threads: [[R_(0), w(1, 1)], [R_(1), w(0, 1)]],
            reg_conds: &[(0, 1, 1), (1, 1, 1)],
            mem_conds: &[],
        },
        Shape {
            name: "S",
            threads: [[w(0, 2), w(1, 1)], [R_(1), w(0, 1)]],
            reg_conds: &[(1, 1, 1)],
            mem_conds: &[(0, 2)],
        },
        Shape {
            name: "R",
            threads: [[w(0, 1), w(1, 1)], [w(1, 2), R_(0)]],
            reg_conds: &[(1, 2, 0)],
            mem_conds: &[(1, 2)],
        },
        Shape {
            name: "2+2W",
            threads: [[w(0, 1), w(1, 2)], [w(1, 1), w(0, 2)]],
            reg_conds: &[],
            mem_conds: &[(0, 1), (1, 1)],
        },
    ]
}

/// Registers used by generated threads: first access reads into r1,
/// second into r2 (writes use no user registers).
fn build_thread(accs: &[Access; 2], link: Link) -> promising_core::ThreadCode {
    let mut b = CodeBuilder::new();
    let mut stmts: Vec<StmtId> = Vec::new();

    let first_reads = accs[0].dir == Dir::R;
    let first_reg = Reg(1);

    // first access
    let first_kind = match link {
        Link::Acq => ReadKind::Acquire,
        Link::WAcq => ReadKind::WeakAcquire,
        _ => ReadKind::Plain,
    };
    match (accs[0].dir, link) {
        // RMW-read links: read the location with a fetch-add of 0, which
        // re-publishes the observed value as a fresh write
        (Dir::R, Link::AmoRead) => {
            stmts.push(b.fetch_add(first_reg, loc_expr(accs[0].loc), Expr::val(0)));
        }
        (Dir::R, Link::AmoReadAcq) => {
            stmts.push(b.amo_kind(
                RmwOp::FetchAdd,
                first_reg,
                loc_expr(accs[0].loc),
                Expr::val(0),
                ReadKind::Acquire,
                WriteKind::Plain,
            ));
        }
        (Dir::R, _) => {
            stmts.push(b.load_kind(first_reg, loc_expr(accs[0].loc), first_kind, false));
        }
        (Dir::W, _) => {
            stmts.push(b.store(loc_expr(accs[0].loc), Expr::val(accs[0].val)));
        }
    }

    // the link's middle statements
    match link {
        Link::Fence(f) => {
            stmts.push(b.fence(f));
        }
        Link::Isb => {
            stmts.push(b.isb());
        }
        _ => {}
    }

    // second access, possibly transformed by the link
    let second_reg = Reg(2);
    let dep = |e: Expr| -> Expr {
        if first_reads {
            e.with_dep(first_reg)
        } else {
            e
        }
    };
    let second_kind = match link {
        Link::Rel => WriteKind::Release,
        Link::WRel => WriteKind::WeakRelease,
        _ => WriteKind::Plain,
    };
    let second = match (accs[1].dir, link) {
        (Dir::R, Link::Addr) => b.load(second_reg, dep(loc_expr(accs[1].loc))),
        (Dir::R, _) => b.load(second_reg, loc_expr(accs[1].loc)),
        // RMW-write links: perform the write as a single-instruction
        // atomic update (the old value lands in an unused register)
        (Dir::W, Link::SwpWrite) => b.swp(Reg(3), loc_expr(accs[1].loc), Expr::val(accs[1].val)),
        (Dir::W, Link::SwpWriteRel) => b.amo_kind(
            RmwOp::Swp,
            Reg(3),
            loc_expr(accs[1].loc),
            Expr::val(accs[1].val),
            ReadKind::Plain,
            WriteKind::Release,
        ),
        (Dir::W, Link::CasWrite) => b.cas(
            Reg(3),
            loc_expr(accs[1].loc),
            Expr::val(0),
            Expr::val(accs[1].val),
        ),
        (Dir::W, Link::Addr) => {
            let succ = Reg(900_000); // unused scratch-like register
            b.store_kind(
                succ,
                dep(loc_expr(accs[1].loc)),
                Expr::val(accs[1].val),
                second_kind,
                false,
            )
        }
        (Dir::W, Link::Data) => {
            let succ = Reg(900_001);
            b.store_kind(
                succ,
                loc_expr(accs[1].loc),
                dep(Expr::val(accs[1].val)),
                second_kind,
                false,
            )
        }
        (Dir::W, _) => {
            let succ = Reg(900_002);
            b.store_kind(
                succ,
                loc_expr(accs[1].loc),
                Expr::val(accs[1].val),
                second_kind,
                false,
            )
        }
    };
    match link {
        Link::Ctrl => {
            let cond = Expr::reg(first_reg).eq(Expr::reg(first_reg));
            let body = second;
            stmts.push(b.if_then(cond, body));
        }
        Link::CtrlIsb => {
            let cond = Expr::reg(first_reg).eq(Expr::reg(first_reg));
            let i = b.isb();
            let body = b.then(i, second);
            stmts.push(b.if_then(cond, body));
        }
        _ => stmts.push(second),
    }

    b.finish_seq(&stmts)
}

fn loc_expr(idx: usize) -> Expr {
    Expr::val(idx as i64)
}

/// Generate the full two-thread suite for `arch`: every shape × every
/// applicable link pair.
pub fn generate_suite(arch: Arch) -> Vec<LitmusTest> {
    let links = links_for(arch);
    let mut out = Vec::new();
    for shape in shapes() {
        for &l0 in &links {
            if !l0.applicable(shape.threads[0][0].dir, shape.threads[0][1].dir) {
                continue;
            }
            for &l1 in &links {
                if !l1.applicable(shape.threads[1][0].dir, shape.threads[1][1].dir) {
                    continue;
                }
                let t0 = build_thread(&shape.threads[0], l0);
                let t1 = build_thread(&shape.threads[1], l1);
                let mut pred = Pred::True;
                for &(tid, reg, val) in shape.reg_conds {
                    pred = pred.and(Pred::RegEq {
                        tid,
                        reg: Reg(reg),
                        val: Val(val),
                    });
                }
                for &(loc, val) in shape.mem_conds {
                    pred = pred.and(Pred::LocEq {
                        loc: Loc(loc as u64),
                        val: Val(val),
                    });
                }
                let mut locs = LocTable::new();
                locs.intern("x");
                locs.intern("y");
                out.push(LitmusTest {
                    name: format!("{}+{}+{}", shape.name, l0.name(), l1.name()),
                    arch,
                    program: Arc::new(Program::new(vec![t0, t1])),
                    locs,
                    init: BTreeMap::new(),
                    condition: Condition {
                        quantifier: Quantifier::Exists,
                        pred,
                    },
                    expect: None,
                    loop_fuel: None,
                    flat_conservative: false,
                    lang: None,
                });
            }
        }
    }
    out
}

/// Three-thread shapes over the *final* edge (the writer chains are
/// fixed): WRC (write-to-read causality) and ISA2 — the multicopy
/// atomicity workhorses. The varying link sits on the last thread's
/// read-read edge.
pub fn generate_three_thread_suite(arch: Arch) -> Vec<LitmusTest> {
    let links = links_for(arch);
    let mut out = Vec::new();
    for &last_link in &links {
        if !last_link.applicable(Dir::R, Dir::R) {
            continue;
        }
        for &mid_link in &[Link::Po, Link::Data, Link::Addr] {
            // WRC: T0: Wx=1 — T1: Rx; δ; Wy=1 — T2: Ry; δ'; Rx
            let t0 = {
                let mut b = CodeBuilder::new();
                let s = b.store(Expr::val(0), Expr::val(1));
                b.finish_seq(&[s])
            };
            let t1 = build_thread(&[R_(0), w(1, 1)], mid_link);
            let t2 = build_thread(&[R_(1), R_(0)], last_link);
            let pred = Pred::True
                .and(Pred::RegEq {
                    tid: 1,
                    reg: Reg(1),
                    val: Val(1),
                })
                .and(Pred::RegEq {
                    tid: 2,
                    reg: Reg(1),
                    val: Val(1),
                })
                .and(Pred::RegEq {
                    tid: 2,
                    reg: Reg(2),
                    val: Val(0),
                });
            let mut locs = LocTable::new();
            locs.intern("x");
            locs.intern("y");
            out.push(LitmusTest {
                name: format!("WRC+{}+{}", mid_link.name(), last_link.name()),
                arch,
                program: Arc::new(Program::new(vec![t0, t1, t2])),
                locs,
                init: BTreeMap::new(),
                condition: Condition {
                    quantifier: Quantifier::Exists,
                    pred,
                },
                expect: None,
                loop_fuel: None,
                flat_conservative: false,
                lang: None,
            });
        }
        // ISA2: T0: Wx=1; dmb; Wy=1 — T1: Ry; data; Wz=ry — T2: Rz; δ'; Rx
        let t0 = {
            let mut b = CodeBuilder::new();
            let s1 = b.store(Expr::val(0), Expr::val(1));
            let f = b.dmb_sy();
            let s2 = b.store(Expr::val(1), Expr::val(1));
            b.finish_seq(&[s1, f, s2])
        };
        let t1 = {
            let mut b = CodeBuilder::new();
            let l = b.load(Reg(1), Expr::val(1));
            let s = b.store(Expr::val(2), Expr::reg(Reg(1)));
            b.finish_seq(&[l, s])
        };
        let t2 = build_thread(&[R_(2), R_(0)], last_link);
        let pred = Pred::True
            .and(Pred::RegEq {
                tid: 2,
                reg: Reg(1),
                val: Val(1),
            })
            .and(Pred::RegEq {
                tid: 2,
                reg: Reg(2),
                val: Val(0),
            });
        let mut locs = LocTable::new();
        locs.intern("x");
        locs.intern("y");
        locs.intern("z");
        out.push(LitmusTest {
            name: format!("ISA2+dmb.sy+data+{}", last_link.name()),
            arch,
            program: Arc::new(Program::new(vec![t0, t1, t2])),
            locs,
            init: BTreeMap::new(),
            condition: Condition {
                quantifier: Quantifier::Exists,
                pred,
            },
            expect: None,
            loop_fuel: None,
            flat_conservative: false,
            lang: None,
        });
    }
    out
}

/// A deterministic subsample of the suite (every `stride`-th test,
/// starting at `offset`) for time-bounded CI runs.
pub fn generate_subsample(arch: Arch, stride: usize, offset: usize) -> Vec<LitmusTest> {
    generate_suite(arch)
        .into_iter()
        .skip(offset)
        .step_by(stride.max(1))
        .collect()
}

/// A deterministic subsample of the *RMW cross* of the suite: only the
/// tests where at least one edge is an RMW link ([`RMW_LINKS`]), strided.
/// The plain subsample dilutes these (RMW links are 5 of ~17), so the
/// agreement gates stride them separately.
pub fn generate_rmw_subsample(arch: Arch, stride: usize, offset: usize) -> Vec<LitmusTest> {
    let rmw_names: Vec<String> = RMW_LINKS.iter().map(|l| l.name()).collect();
    generate_suite(arch)
        .into_iter()
        .filter(|t| {
            t.name
                .split('+')
                .skip(1)
                .any(|part| rmw_names.iter().any(|n| n == part))
        })
        .skip(offset)
        .step_by(stride.max(1))
        .collect()
}

// ---------------------------------------------------------------------
// Language-level corpus (C11 orderings, compiled per architecture)
// ---------------------------------------------------------------------

/// A language-level event of a generated shape.
#[derive(Clone, Copy, Debug)]
enum LEvent {
    /// `store(loc, val, ord)`.
    W { loc: u64, val: i64 },
    /// `rN = load(loc, ord)` (register allocated per thread).
    R { loc: u64 },
}

/// One language-level shape: thread event lists plus the classic
/// exists-condition.
struct LShape {
    name: &'static str,
    threads: &'static [&'static [LEvent]],
    reg_conds: &'static [(usize, u32, i64)],
    mem_conds: &'static [(u64, i64)],
}

fn lang_shapes() -> Vec<LShape> {
    vec![
        LShape {
            name: "SB",
            threads: &[
                &[LEvent::W { loc: 0, val: 1 }, LEvent::R { loc: 1 }],
                &[LEvent::W { loc: 1, val: 1 }, LEvent::R { loc: 0 }],
            ],
            reg_conds: &[(0, 1, 0), (1, 1, 0)],
            mem_conds: &[],
        },
        LShape {
            name: "MP",
            threads: &[
                &[LEvent::W { loc: 0, val: 1 }, LEvent::W { loc: 1, val: 1 }],
                &[LEvent::R { loc: 1 }, LEvent::R { loc: 0 }],
            ],
            reg_conds: &[(1, 1, 1), (1, 2, 0)],
            mem_conds: &[],
        },
        LShape {
            name: "LB",
            threads: &[
                &[LEvent::R { loc: 0 }, LEvent::W { loc: 1, val: 1 }],
                &[LEvent::R { loc: 1 }, LEvent::W { loc: 0, val: 1 }],
            ],
            reg_conds: &[(0, 1, 1), (1, 1, 1)],
            mem_conds: &[],
        },
        LShape {
            name: "S",
            threads: &[
                &[LEvent::W { loc: 0, val: 2 }, LEvent::W { loc: 1, val: 1 }],
                &[LEvent::R { loc: 1 }, LEvent::W { loc: 0, val: 1 }],
            ],
            reg_conds: &[(1, 1, 1)],
            mem_conds: &[(0, 2)],
        },
        LShape {
            name: "R",
            threads: &[
                &[LEvent::W { loc: 0, val: 1 }, LEvent::W { loc: 1, val: 1 }],
                &[LEvent::W { loc: 1, val: 2 }, LEvent::R { loc: 0 }],
            ],
            reg_conds: &[(1, 1, 0)],
            mem_conds: &[(1, 2)],
        },
        LShape {
            name: "2+2W",
            threads: &[
                &[LEvent::W { loc: 0, val: 1 }, LEvent::W { loc: 1, val: 2 }],
                &[LEvent::W { loc: 1, val: 1 }, LEvent::W { loc: 0, val: 2 }],
            ],
            reg_conds: &[],
            mem_conds: &[(0, 1), (1, 1)],
        },
        LShape {
            name: "CoRR",
            threads: &[
                &[LEvent::W { loc: 0, val: 1 }],
                &[LEvent::R { loc: 0 }, LEvent::R { loc: 0 }],
            ],
            reg_conds: &[(1, 1, 1), (1, 2, 0)],
            mem_conds: &[],
        },
    ]
}

use promising_lang::Ordering as LOrd;

const LANG_STORE_ORDS: [LOrd; 3] = [LOrd::Relaxed, LOrd::Release, LOrd::SeqCst];
const LANG_LOAD_ORDS: [LOrd; 3] = [LOrd::Relaxed, LOrd::Acquire, LOrd::SeqCst];

/// The cross-architecture agreement fragment (see `docs/architecture.md`
/// and [`promising_lang::compile`]): an `sc` load must not be preceded
/// in its thread by a `rlx` access — the RISC-V lowering's leading
/// `fence rw,rw` orders *all* program-order-earlier accesses before the
/// load, where ARM's `ldar` is only ordered after earlier `rel`/`sc`
/// stores (`vRel`) and `acq`/`sc` loads (`vrNew`). Shapes outside the
/// fragment compile soundly but may show strictly fewer behaviours on
/// RISC-V; the generated corpus (whose outcome sets are asserted
/// *equal* across architectures) stays inside it.
fn lang_fragment_ok(ords: &[(LEvent, LOrd)]) -> bool {
    for (i, &(ev, ord)) in ords.iter().enumerate() {
        if matches!(ev, LEvent::R { .. }) && ord == LOrd::SeqCst {
            let weak_before = ords[..i]
                .iter()
                .any(|&(_, o)| matches!(o, LOrd::Relaxed | LOrd::NotAtomic));
            if weak_before {
                return false;
            }
        }
    }
    true
}

/// Enumerate the per-event ordering assignments of one thread that stay
/// inside the agreement fragment.
fn lang_thread_ords(events: &[LEvent]) -> Vec<Vec<(LEvent, LOrd)>> {
    let mut out: Vec<Vec<(LEvent, LOrd)>> = vec![Vec::new()];
    for &ev in events {
        let choices: &[LOrd] = match ev {
            LEvent::W { .. } => &LANG_STORE_ORDS,
            LEvent::R { .. } => &LANG_LOAD_ORDS,
        };
        out = out
            .into_iter()
            .flat_map(|prefix| {
                choices.iter().map(move |&o| {
                    let mut v = prefix.clone();
                    v.push((ev, o));
                    v
                })
            })
            .collect();
    }
    out.retain(|v| lang_fragment_ok(v));
    out
}

fn lang_ord_tag(ords: &[(LEvent, LOrd)]) -> String {
    ords.iter()
        .map(|(_, o)| o.keyword())
        .collect::<Vec<_>>()
        .join(".")
}

/// Build one language-level thread from an ordered event list, with an
/// optional standalone fence between the events.
fn build_lang_thread(ords: &[(LEvent, LOrd)], fence: Option<LOrd>) -> promising_lang::Thread {
    use promising_lang::Stmt as LStmt;
    let mut stmts = Vec::new();
    let mut reg = 1u32;
    for (i, &(ev, ord)) in ords.iter().enumerate() {
        if i == 1 {
            if let Some(f) = fence {
                stmts.push(LStmt::Fence(f));
            }
        }
        match ev {
            LEvent::W { loc, val } => stmts.push(LStmt::Store {
                addr: Expr::val(loc as i64),
                data: Expr::val(val),
                ord,
            }),
            LEvent::R { loc } => {
                stmts.push(LStmt::Load {
                    reg: Reg(reg),
                    addr: Expr::val(loc as i64),
                    ord,
                });
                reg += 1;
            }
        }
    }
    promising_lang::Thread(stmts)
}

fn lang_shape_condition(shape: &LShape) -> Condition {
    let mut pred = Pred::True;
    for &(tid, reg, val) in shape.reg_conds {
        pred = pred.and(Pred::RegEq {
            tid,
            reg: Reg(reg),
            val: Val(val),
        });
    }
    for &(loc, val) in shape.mem_conds {
        pred = pred.and(Pred::LocEq {
            loc: Loc(loc),
            val: Val(val),
        });
    }
    Condition {
        quantifier: Quantifier::Exists,
        pred,
    }
}

fn lang_test(
    name: String,
    threads: Vec<promising_lang::Thread>,
    condition: Condition,
) -> crate::test::LangTest {
    let mut locs = LocTable::new();
    locs.intern("x");
    locs.intern("y");
    crate::test::LangTest {
        name,
        program: promising_lang::Program::new(threads),
        locs,
        init: BTreeMap::new(),
        condition,
        expect: None,
        loop_fuel: None,
    }
}

/// Generate the language-level corpus: the classic shapes crossed with
/// every per-access C11 ordering assignment inside the cross-architecture
/// agreement fragment, plus standalone-fence and RMW variants. The
/// conformance gates assert that every test's outcome set is identical
/// when compiled to ARM vs RISC-V, under every engine
/// (`tests/compilation_soundness.rs`, `litmus_agreement`).
pub fn generate_lang_suite() -> Vec<crate::test::LangTest> {
    let mut out = Vec::new();

    // (a) the per-access ordering cross
    for shape in lang_shapes() {
        let cond = lang_shape_condition(&shape);
        let per_thread: Vec<Vec<Vec<(LEvent, LOrd)>>> =
            shape.threads.iter().map(|t| lang_thread_ords(t)).collect();
        debug_assert_eq!(per_thread.len(), 2);
        for t0 in &per_thread[0] {
            for t1 in &per_thread[1] {
                let name = format!("{}+{}+{}", shape.name, lang_ord_tag(t0), lang_ord_tag(t1));
                let threads = vec![build_lang_thread(t0, None), build_lang_thread(t1, None)];
                out.push(lang_test(name, threads, cond.clone()));
            }
        }
    }

    // (b) standalone-fence variants: all-rlx accesses, the same fence in
    // both threads. `acq` and `sc` fences lower to the *same* barrier on
    // both architectures (`dmb.ld` = `fence r,rw`, `dmb.sy` =
    // `fence rw,rw`), so they are always in the fragment. `rel` and
    // `acq_rel` lower to `dmb.sy` on ARM (which additionally orders
    // …→R) but to `fence rw,w` / `fence.tso` on RISC-V, so they leave
    // the fragment whenever the fence must order something before a
    // *later read*: `rel` on any …→R edge, `acq_rel` on a W→R edge
    // (`fence.tso` still covers R→R).
    for shape in lang_shapes() {
        if shape.threads.iter().any(|t| t.len() < 2) {
            continue;
        }
        let cond = lang_shape_condition(&shape);
        let edge_allows = |t: &[LEvent], f: LOrd| {
            matches!(
                (t[0], t[1], f),
                (_, _, LOrd::Acquire | LOrd::SeqCst)
                    | (_, LEvent::W { .. }, LOrd::Release | LOrd::AcqRel)
                    | (LEvent::R { .. }, LEvent::R { .. }, LOrd::AcqRel)
            )
        };
        let fences: Vec<LOrd> = [LOrd::Acquire, LOrd::Release, LOrd::AcqRel, LOrd::SeqCst]
            .into_iter()
            .filter(|&f| shape.threads.iter().all(|t| edge_allows(t, f)))
            .collect();
        for &f in &fences {
            let rlx = |t: &&[LEvent]| t.iter().map(|&e| (e, LOrd::Relaxed)).collect::<Vec<_>>();
            let threads = shape
                .threads
                .iter()
                .map(|t| build_lang_thread(&rlx(t), Some(f)))
                .collect();
            let name = format!("{}+fence.{}+fence.{}", shape.name, f.keyword(), f.keyword());
            out.push(lang_test(name, threads, cond.clone()));
        }
    }

    // (c) RMW variants on the MP shape: the writer publishes via a CAS or
    // swap (its *last* event — an RMW may not precede a store in the
    // agreement fragment, RISC-V's ρ12 success-dependency orders later
    // stores after the RMW where ARM does not), the reader reads the flag
    // via a fetch_add.
    {
        use promising_lang::Stmt as LStmt;
        let cond = Condition {
            quantifier: Quantifier::Exists,
            pred: Pred::True
                .and(Pred::RegEq {
                    tid: 1,
                    reg: Reg(1),
                    val: Val(1),
                })
                .and(Pred::RegEq {
                    tid: 1,
                    reg: Reg(2),
                    val: Val(0),
                }),
        };
        for (wname, wop, word) in [
            ("swap.rlx", RmwOp::Swp, LOrd::Relaxed),
            ("swap.rel", RmwOp::Swp, LOrd::Release),
            ("cas.rlx", RmwOp::Cas, LOrd::Relaxed),
            ("cas.rel", RmwOp::Cas, LOrd::Release),
            ("cas.sc", RmwOp::Cas, LOrd::SeqCst),
        ] {
            for (rname, rord) in [
                ("amo.rlx", LOrd::Relaxed),
                ("amo.acq", LOrd::Acquire),
                ("amo.sc", LOrd::SeqCst),
            ] {
                let writer = promising_lang::Thread(vec![
                    LStmt::Store {
                        addr: Expr::val(0),
                        data: Expr::val(1),
                        ord: LOrd::Relaxed,
                    },
                    LStmt::Rmw {
                        op: wop,
                        dst: Reg(9),
                        addr: Expr::val(1),
                        expected: (wop == RmwOp::Cas).then(|| Expr::val(0)),
                        operand: Expr::val(1),
                        ord: word,
                    },
                ]);
                let reader = promising_lang::Thread(vec![
                    LStmt::Rmw {
                        op: RmwOp::FetchAdd,
                        dst: Reg(1),
                        addr: Expr::val(1),
                        expected: None,
                        operand: Expr::val(0),
                        ord: rord,
                    },
                    LStmt::Load {
                        reg: Reg(2),
                        addr: Expr::val(0),
                        ord: LOrd::Relaxed,
                    },
                ]);
                out.push(lang_test(
                    format!("MP+{wname}+{rname}"),
                    vec![writer, reader],
                    cond.clone(),
                ));
            }
        }
    }

    out
}

/// A deterministic subsample of the language corpus (every `stride`-th
/// test, starting at `offset`).
pub fn generate_lang_subsample(stride: usize, offset: usize) -> Vec<crate::test::LangTest> {
    generate_lang_suite()
        .into_iter()
        .skip(offset)
        .step_by(stride.max(1))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_sizes_are_substantial() {
        let arm = generate_suite(Arch::Arm);
        let riscv = generate_suite(Arch::RiscV);
        assert!(arm.len() >= 300, "ARM suite has {} tests", arm.len());
        assert!(riscv.len() >= 300, "RISC-V suite has {} tests", riscv.len());
    }

    #[test]
    fn names_are_unique_within_a_suite() {
        let arm = generate_suite(Arch::Arm);
        let mut names: Vec<&str> = arm.iter().map(|t| t.name.as_str()).collect();
        let before = names.len();
        names.sort_unstable();
        names.dedup();
        assert_eq!(before, names.len());
    }

    #[test]
    fn links_respect_applicability() {
        // no data link on a W→W edge
        let arm = generate_suite(Arch::Arm);
        assert!(!arm.iter().any(|t| t.name == "MP+data+po"));
        assert!(arm.iter().any(|t| t.name == "MP+dmb.sy+addr"));
        assert!(arm.iter().any(|t| t.name == "LB+data+data"));
    }

    #[test]
    fn subsample_is_a_subset() {
        let all = generate_suite(Arch::Arm);
        let sub = generate_subsample(Arch::Arm, 10, 3);
        assert!(sub.len() <= all.len() / 10 + 1);
        let names: std::collections::BTreeSet<&str> = all.iter().map(|t| t.name.as_str()).collect();
        assert!(sub.iter().all(|t| names.contains(t.name.as_str())));
    }

    #[test]
    fn three_thread_suite_generates_wrc_and_isa2() {
        for arch in [Arch::Arm, Arch::RiscV] {
            let suite = generate_three_thread_suite(arch);
            assert!(suite.len() >= 20, "{arch:?}: {} tests", suite.len());
            assert!(suite.iter().any(|t| t.name.starts_with("WRC+")));
            assert!(suite.iter().any(|t| t.name.starts_with("ISA2+")));
            assert!(suite.iter().all(|t| t.program.num_threads() == 3));
        }
    }

    #[test]
    fn lang_suite_is_substantial_with_unique_names() {
        let suite = generate_lang_suite();
        assert!(suite.len() >= 400, "lang suite has {} tests", suite.len());
        let mut names: Vec<&str> = suite.iter().map(|t| t.name.as_str()).collect();
        let before = names.len();
        names.sort_unstable();
        names.dedup();
        assert_eq!(before, names.len(), "duplicate lang suite names");
        // the cross covers sc variants, fence variants, and RMW variants
        assert!(suite.iter().any(|t| t.name == "SB+sc.sc+sc.sc"));
        assert!(suite
            .iter()
            .any(|t| t.name == "MP+fence.acq_rel+fence.acq_rel"));
        assert!(suite.iter().any(|t| t.name == "MP+cas.rel+amo.acq"));
    }

    #[test]
    fn lang_suite_stays_in_the_agreement_fragment() {
        use promising_lang::{Ordering as LOrd, Stmt as LStmt};
        for t in generate_lang_suite() {
            for thread in t.program.threads() {
                let mut saw_weak = false;
                let mut saw_rmw = false;
                for s in &thread.0 {
                    match s {
                        LStmt::Load { ord, .. } => {
                            assert!(
                                *ord != LOrd::SeqCst || !saw_weak,
                                "{}: sc load after a weak access",
                                t.name
                            );
                            if matches!(ord, LOrd::Relaxed | LOrd::NotAtomic) {
                                saw_weak = true;
                            }
                        }
                        LStmt::Store { ord, .. } => {
                            assert!(!saw_rmw, "{}: store after an RMW", t.name);
                            if matches!(ord, LOrd::Relaxed | LOrd::NotAtomic) {
                                saw_weak = true;
                            }
                        }
                        LStmt::Rmw { .. } => {
                            assert!(!saw_rmw, "{}: RMW after an RMW", t.name);
                            saw_rmw = true;
                        }
                        _ => {}
                    }
                }
            }
        }
    }

    #[test]
    fn lang_subsample_is_a_subset() {
        let all = generate_lang_suite();
        let sub = generate_lang_subsample(10, 3);
        assert!(sub.len() <= all.len() / 10 + 1);
        let names: std::collections::BTreeSet<&str> = all.iter().map(|t| t.name.as_str()).collect();
        assert!(sub.iter().all(|t| names.contains(t.name.as_str())));
    }

    #[test]
    fn generated_programs_have_two_threads_and_a_condition() {
        for t in generate_subsample(Arch::RiscV, 25, 0) {
            assert_eq!(t.program.num_threads(), 2);
            assert!(!matches!(t.condition.pred, Pred::True));
        }
    }
}
