//! Litmus tests for Promising-ARM/RISC-V: a textual format (hardware
//! `ARM`/`RISCV` headers and language-level `LANG` headers), the classic
//! named catalogue with architectural expectations plus a C11
//! language-level catalogue, systematic diy-style generators for both
//! layers, and a harness that runs any test under the Promising
//! (promise-first or naive), axiomatic, and Flat-lite models and
//! compares their outcome sets — for language-level tests, across both
//! compiled architectures at once ([`check_lang_conformance`]).
//!
//! ```
//! use promising_litmus::{by_name, evaluate, ModelKind};
//!
//! let test = by_name("MP+dmb.sy+addr").expect("catalogue test");
//! let verdict = evaluate(&test, ModelKind::Promising)?;
//! assert!(!verdict.holds); // the weak outcome is forbidden
//! assert_eq!(verdict.matches_expectation, Some(true));
//! # Ok::<(), promising_litmus::RunError>(())
//! ```

#![warn(missing_docs)]

pub mod catalogue;
pub mod format;
pub mod generator;
pub mod harness;
pub mod test;

pub use catalogue::{by_name, catalogue, catalogue_for, lang_by_name, lang_catalogue};
pub use format::{parse_lang_litmus, parse_litmus};
pub use generator::{
    generate_lang_subsample, generate_lang_suite, generate_rmw_subsample, generate_subsample,
    generate_suite, generate_three_thread_suite, links_for, Link, RMW_LINKS,
};
pub use harness::{
    check_agreement, check_lang_conformance, evaluate, evaluate_lang, run_lang_model, run_model,
    run_model_budgeted, run_model_budgeted_with, run_model_isolated, run_model_sampled,
    run_model_sampled_budgeted, run_model_with, Agreement, LangConformance, ModelKind, ModelRun,
    RunError, Verdict, DEFAULT_FUEL,
};
pub use promising_explorer::{SearchBudget, StopReason};
pub use test::{Condition, Expectation, LangTest, LitmusTest, Pred, Quantifier};
