//! Litmus tests for Promising-ARM/RISC-V: a textual format, the classic
//! named catalogue with architectural expectations, a systematic
//! diy-style generator, and a harness that runs any test under the
//! Promising (promise-first or naive), axiomatic, and Flat-lite models
//! and compares their outcome sets.
//!
//! ```
//! use promising_litmus::{by_name, evaluate, ModelKind};
//!
//! let test = by_name("MP+dmb.sy+addr").expect("catalogue test");
//! let verdict = evaluate(&test, ModelKind::Promising)?;
//! assert!(!verdict.holds); // the weak outcome is forbidden
//! assert_eq!(verdict.matches_expectation, Some(true));
//! # Ok::<(), promising_litmus::RunError>(())
//! ```

#![warn(missing_docs)]

pub mod catalogue;
pub mod format;
pub mod generator;
pub mod harness;
pub mod test;

pub use catalogue::{by_name, catalogue, catalogue_for};
pub use format::parse_litmus;
pub use generator::{
    generate_rmw_subsample, generate_subsample, generate_suite, generate_three_thread_suite,
    links_for, Link, RMW_LINKS,
};
pub use harness::{
    check_agreement, evaluate, run_model, run_model_sampled, Agreement, ModelKind, ModelRun,
    RunError, Verdict, DEFAULT_FUEL,
};
pub use test::{Condition, Expectation, LitmusTest, Pred, Quantifier};
