//! The textual litmus format (an assembly-lite analogue of the
//! herd/litmus format the paper's tool consumes):
//!
//! ```text
//! ARM MP+dmb.sy+addr
//! { y=0 }                          // optional init section
//! store(x, 1)
//! dmb.sy
//! store(y, 1)
//! ---
//! r1 = load(y)
//! r2 = load(x + (r1 - r1))
//! exists (P1:r1=1 /\ P1:r2=0)
//! expect forbidden                 // optional
//! ```

use crate::test::{Condition, Expectation, LitmusTest, Pred, Quantifier};
use promising_core::parser::{parse_thread, LocTable, ParseError};
use promising_core::{Arch, Loc, Program, Reg, Val};
use std::collections::BTreeMap;
use std::sync::Arc;

/// Parse a litmus test from its textual form.
///
/// # Errors
///
/// Returns a [`ParseError`] describing the offending line.
pub fn parse_litmus(src: &str) -> Result<LitmusTest, ParseError> {
    let mut lines = src.lines().enumerate().peekable();

    // header: ARCH NAME
    let (hline, header) = loop {
        match lines.next() {
            Some((n, l)) if !l.trim().is_empty() => break (n + 1, l.trim().to_string()),
            Some(_) => continue,
            None => {
                return Err(ParseError {
                    message: "empty litmus source".into(),
                    line: 1,
                })
            }
        }
    };
    let mut hparts = header.splitn(2, char::is_whitespace);
    let arch = match hparts.next().unwrap_or("") {
        "ARM" | "AArch64" => Arch::Arm,
        "RISCV" | "RISC-V" => Arch::RiscV,
        other => {
            return Err(ParseError {
                message: format!("unknown architecture `{other}` (use ARM or RISCV)"),
                line: hline,
            })
        }
    };
    let name = hparts.next().unwrap_or("unnamed").trim().to_string();

    // optional init section { x=1; y=2 }
    let mut init_src: Option<(usize, String)> = None;
    if let Some(&(n, l)) = lines.peek() {
        if l.trim_start().starts_with('{') {
            init_src = Some((n + 1, l.trim().to_string()));
            lines.next();
        }
    }

    // body: everything until the condition line
    let mut body = String::new();
    let mut cond_line: Option<(usize, String)> = None;
    let mut expect_line: Option<(usize, String)> = None;
    for (n, l) in lines {
        let t = l.trim();
        if t.starts_with("exists") || t.starts_with("forall") {
            cond_line = Some((n + 1, t.to_string()));
        } else if t.starts_with("expect") {
            expect_line = Some((n + 1, t.to_string()));
        } else if cond_line.is_none() {
            body.push_str(l);
            body.push('\n');
        } else if !t.is_empty() {
            return Err(ParseError {
                message: format!("unexpected content after condition: `{t}`"),
                line: n + 1,
            });
        }
    }

    let mut locs = LocTable::new();
    let mut threads = Vec::new();
    for section in split_threads(&body) {
        threads.push(parse_thread(&section, &mut locs)?);
    }
    let program = Program::new(threads);

    let init = match init_src {
        None => BTreeMap::new(),
        Some((n, text)) => parse_init(&text, &mut locs, n)?,
    };

    let condition = match cond_line {
        None => Condition::trivial(),
        Some((n, text)) => parse_condition(&text, &mut locs, n)?,
    };

    let expect = match expect_line {
        None => None,
        Some((n, text)) => {
            let rest = text.trim_start_matches("expect").trim();
            match rest {
                "allowed" => Some(Expectation::Allowed),
                "forbidden" => Some(Expectation::Forbidden),
                other => {
                    return Err(ParseError {
                        message: format!("expect must be allowed/forbidden, got `{other}`"),
                        line: n,
                    })
                }
            }
        }
    };

    Ok(LitmusTest {
        name,
        arch,
        program: Arc::new(program),
        locs,
        init,
        condition,
        expect,
        loop_fuel: None,
        flat_conservative: false,
    })
}

fn split_threads(src: &str) -> Vec<String> {
    let mut sections = vec![String::new()];
    for line in src.lines() {
        if line.trim() == "---" {
            sections.push(String::new());
        } else {
            let s = sections.last_mut().expect("non-empty");
            s.push_str(line);
            s.push('\n');
        }
    }
    sections
}

fn parse_init(
    text: &str,
    locs: &mut LocTable,
    line: usize,
) -> Result<BTreeMap<Loc, Val>, ParseError> {
    let inner = text
        .trim()
        .strip_prefix('{')
        .and_then(|t| t.strip_suffix('}'))
        .ok_or_else(|| ParseError {
            message: "init section must be `{ x=1; y=2 }` on one line".into(),
            line,
        })?;
    let mut out = BTreeMap::new();
    for item in inner.split(';') {
        let item = item.trim();
        if item.is_empty() {
            continue;
        }
        let (name, val) = item.split_once('=').ok_or_else(|| ParseError {
            message: format!("bad init item `{item}`"),
            line,
        })?;
        let v: i64 = val.trim().parse().map_err(|_| ParseError {
            message: format!("bad init value `{val}`"),
            line,
        })?;
        out.insert(locs.intern(name.trim()), Val(v));
    }
    Ok(out)
}

/// Parse `exists (P1:r1=1 /\ (P1:r2=0 \/ ~x=2))` / `forall (…)`.
fn parse_condition(text: &str, locs: &mut LocTable, line: usize) -> Result<Condition, ParseError> {
    let (quantifier, rest) = if let Some(r) = text.strip_prefix("exists") {
        (Quantifier::Exists, r)
    } else if let Some(r) = text.strip_prefix("forall") {
        (Quantifier::Forall, r)
    } else {
        return Err(ParseError {
            message: "condition must start with exists/forall".into(),
            line,
        });
    };
    let mut p = CondParser {
        chars: rest.trim().chars().collect(),
        pos: 0,
        locs,
        line,
    };
    let pred = p.or_expr()?;
    p.skip_ws();
    if p.pos != p.chars.len() {
        return Err(ParseError {
            message: "trailing input in condition".into(),
            line,
        });
    }
    Ok(Condition { quantifier, pred })
}

struct CondParser<'a> {
    chars: Vec<char>,
    pos: usize,
    locs: &'a mut LocTable,
    line: usize,
}

impl CondParser<'_> {
    fn err(&self, msg: impl Into<String>) -> ParseError {
        ParseError {
            message: msg.into(),
            line: self.line,
        }
    }

    fn skip_ws(&mut self) {
        while self.pos < self.chars.len() && self.chars[self.pos].is_whitespace() {
            self.pos += 1;
        }
    }

    fn eat(&mut self, s: &str) -> bool {
        self.skip_ws();
        let sc: Vec<char> = s.chars().collect();
        if self.chars[self.pos..].starts_with(&sc) {
            self.pos += sc.len();
            true
        } else {
            false
        }
    }

    fn or_expr(&mut self) -> Result<Pred, ParseError> {
        let mut parts = vec![self.and_expr()?];
        while self.eat("\\/") {
            parts.push(self.and_expr()?);
        }
        Ok(if parts.len() == 1 {
            parts.pop().expect("one element")
        } else {
            Pred::Or(parts)
        })
    }

    fn and_expr(&mut self) -> Result<Pred, ParseError> {
        let mut parts = vec![self.atom()?];
        while self.eat("/\\") {
            parts.push(self.atom()?);
        }
        Ok(if parts.len() == 1 {
            parts.pop().expect("one element")
        } else {
            Pred::And(parts)
        })
    }

    fn atom(&mut self) -> Result<Pred, ParseError> {
        self.skip_ws();
        if self.eat("~") {
            return Ok(Pred::Not(Box::new(self.atom()?)));
        }
        if self.eat("(") {
            let p = self.or_expr()?;
            if !self.eat(")") {
                return Err(self.err("expected `)`"));
            }
            return Ok(p);
        }
        if self.eat("true") {
            return Ok(Pred::True);
        }
        // Pn:rM=v or name=v
        let start = self.pos;
        while self.pos < self.chars.len()
            && (self.chars[self.pos].is_ascii_alphanumeric()
                || matches!(self.chars[self.pos], '_' | ':' | '.'))
        {
            self.pos += 1;
        }
        let ident: String = self.chars[start..self.pos].iter().collect();
        if ident.is_empty() {
            return Err(self.err("expected condition atom"));
        }
        if !self.eat("=") {
            return Err(self.err(format!("expected `=` after `{ident}`")));
        }
        self.skip_ws();
        let vstart = self.pos;
        if self.pos < self.chars.len() && self.chars[self.pos] == '-' {
            self.pos += 1;
        }
        while self.pos < self.chars.len() && self.chars[self.pos].is_ascii_digit() {
            self.pos += 1;
        }
        let vtext: String = self.chars[vstart..self.pos].iter().collect();
        let val: i64 = vtext
            .parse()
            .map_err(|_| self.err(format!("bad value `{vtext}`")))?;

        if let Some((proc_part, reg_part)) = ident.split_once(':') {
            let tid: usize = proc_part
                .strip_prefix('P')
                .and_then(|d| d.parse().ok())
                .ok_or_else(|| self.err(format!("bad thread `{proc_part}`")))?;
            let reg: u32 = reg_part
                .strip_prefix('r')
                .and_then(|d| d.parse().ok())
                .ok_or_else(|| self.err(format!("bad register `{reg_part}`")))?;
            Ok(Pred::RegEq {
                tid,
                reg: Reg(reg),
                val: Val(val),
            })
        } else {
            Ok(Pred::LocEq {
                loc: self.locs.intern(&ident),
                val: Val(val),
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const MP: &str = "\
ARM MP+dmb.sy+addr
store(x, 1)
dmb.sy
store(y, 1)
---
r1 = load(y)
r2 = load(x + (r1 - r1))
exists (P1:r1=1 /\\ P1:r2=0)
expect forbidden
";

    #[test]
    fn parses_full_test() {
        let t = parse_litmus(MP).unwrap();
        assert_eq!(t.name, "MP+dmb.sy+addr");
        assert_eq!(t.arch, Arch::Arm);
        assert_eq!(t.program.num_threads(), 2);
        assert_eq!(t.expect, Some(Expectation::Forbidden));
        assert_eq!(t.condition.quantifier, Quantifier::Exists);
    }

    #[test]
    fn parses_init_section() {
        let src = "RISCV init-test\n{ x=5; y=7 }\nr1 = load(x)\nexists (P0:r1=5)";
        let t = parse_litmus(src).unwrap();
        assert_eq!(t.arch, Arch::RiscV);
        let x = t.locs.get("x").unwrap();
        let y = t.locs.get("y").unwrap();
        assert_eq!(t.init.get(&x), Some(&Val(5)));
        assert_eq!(t.init.get(&y), Some(&Val(7)));
    }

    #[test]
    fn parses_memory_conditions_and_connectives() {
        let src = "ARM t\nstore(x, 1)\nexists (x=1 \\/ (~x=2 /\\ true))";
        let t = parse_litmus(src).unwrap();
        match &t.condition.pred {
            Pred::Or(ps) => assert_eq!(ps.len(), 2),
            other => panic!("expected Or, got {other:?}"),
        }
    }

    #[test]
    fn forall_conditions_parse() {
        let src = "ARM t\nstore(x, 1)\nforall (x=1)";
        let t = parse_litmus(src).unwrap();
        assert_eq!(t.condition.quantifier, Quantifier::Forall);
    }

    #[test]
    fn rejects_unknown_arch() {
        let src = "X86 t\nstore(x, 1)\nexists (x=1)";
        assert!(parse_litmus(src).is_err());
    }

    #[test]
    fn rejects_garbage_after_condition() {
        let src = "ARM t\nstore(x, 1)\nexists (x=1)\nstore(y, 2)";
        assert!(parse_litmus(src).is_err());
    }

    #[test]
    fn negative_values_in_conditions() {
        let src = "ARM t\nstore(x, 0 - 3)\nexists (x=-3)";
        let t = parse_litmus(src).unwrap();
        assert!(matches!(t.condition.pred, Pred::LocEq { val: Val(-3), .. }));
    }

    #[test]
    fn condition_locations_share_the_program_table() {
        let src = "ARM t\nstore(x, 1)\n---\nr1 = load(x)\nexists (P1:r1=1 /\\ x=1)";
        let t = parse_litmus(src).unwrap();
        // x in the condition is the same Loc as in the program
        match &t.condition.pred {
            Pred::And(ps) => match &ps[1] {
                Pred::LocEq { loc, .. } => assert_eq!(*loc, t.locs.get("x").unwrap()),
                other => panic!("expected LocEq, got {other:?}"),
            },
            other => panic!("expected And, got {other:?}"),
        }
    }
}
