//! The textual litmus format (an assembly-lite analogue of the
//! herd/litmus format the paper's tool consumes):
//!
//! ```text
//! ARM MP+dmb.sy+addr
//! { y=0 }                          // optional init section
//! store(x, 1)
//! dmb.sy
//! store(y, 1)
//! ---
//! r1 = load(y)
//! r2 = load(x + (r1 - r1))
//! exists (P1:r1=1 /\ P1:r2=0)
//! expect forbidden                 // optional
//! ```
//!
//! A `LANG` header selects the *language-level* frontend instead: the
//! body is surface-language syntax with C11 orderings
//! (`promising_lang`), and the test compiles to either architecture —
//! [`parse_litmus`] returns the ARM compilation (with the frontend
//! source attached as [`LitmusTest::lang`]); [`parse_lang_litmus`]
//! returns the uncompiled [`LangTest`].
//!
//! ```text
//! LANG MP+rel+acq
//! store(x, 1, rlx)
//! store(y, 1, rel)
//! ---
//! r1 = load(y, acq)
//! r2 = load(x, rlx)
//! exists (P1:r1=1 /\ P1:r2=0)
//! expect forbidden
//! ```

use crate::test::{Condition, Expectation, LangTest, LitmusTest, Pred, Quantifier};
use promising_core::parser::{parse_thread, LocTable, ParseError};
use promising_core::{Arch, Loc, Program, Reg, Val};
use std::collections::BTreeMap;
use std::sync::Arc;

/// The architecture token of a litmus header.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum HeaderArch {
    Hw(Arch),
    Lang,
}

/// The raw sections of a litmus source, before any body parsing. Body
/// lines keep their 1-based source line numbers so that thread-parse
/// errors report positions in the *original* litmus source (not
/// body-relative ones).
struct Sections {
    arch: HeaderArch,
    name: String,
    init: Option<(usize, String)>,
    body: Vec<(usize, String)>,
    cond: Option<(usize, String)>,
    expect: Option<(usize, String)>,
}

/// Prefix an error with the test name, so multi-test failures (catalogue
/// sweeps, generated corpora) identify the offending test, not just a
/// line number.
fn in_test(name: &str, mut e: ParseError) -> ParseError {
    e.message = format!("in test `{name}`: {}", e.message);
    e
}

fn split_sections(src: &str) -> Result<Sections, ParseError> {
    let mut lines = src.lines().enumerate().peekable();

    // header: ARCH NAME
    let (hline, header) = loop {
        match lines.next() {
            Some((n, l)) if !l.trim().is_empty() => break (n + 1, l.trim().to_string()),
            Some(_) => continue,
            None => {
                return Err(ParseError {
                    message: "empty litmus source".into(),
                    line: 1,
                })
            }
        }
    };
    let mut hparts = header.splitn(2, char::is_whitespace);
    let arch = match hparts.next().unwrap_or("") {
        "ARM" | "AArch64" => HeaderArch::Hw(Arch::Arm),
        "RISCV" | "RISC-V" => HeaderArch::Hw(Arch::RiscV),
        "LANG" => HeaderArch::Lang,
        other => {
            return Err(ParseError {
                message: format!("unknown architecture `{other}` (use ARM, RISCV or LANG)"),
                line: hline,
            })
        }
    };
    let name = hparts.next().unwrap_or("unnamed").trim().to_string();

    // optional init section { x=1; y=2 }
    let mut init: Option<(usize, String)> = None;
    if let Some(&(n, l)) = lines.peek() {
        if l.trim_start().starts_with('{') {
            init = Some((n + 1, l.trim().to_string()));
            lines.next();
        }
    }

    // body: everything until the condition line
    let mut body = Vec::new();
    let mut cond: Option<(usize, String)> = None;
    let mut expect: Option<(usize, String)> = None;
    for (n, l) in lines {
        let t = l.trim();
        if t.starts_with("exists") || t.starts_with("forall") {
            cond = Some((n + 1, t.to_string()));
        } else if t.starts_with("expect") {
            expect = Some((n + 1, t.to_string()));
        } else if cond.is_none() {
            body.push((n + 1, l.to_string()));
        } else if !t.is_empty() {
            return Err(in_test(
                &name,
                ParseError {
                    message: format!("unexpected content after condition: `{t}`"),
                    line: n + 1,
                },
            ));
        }
    }

    Ok(Sections {
        arch,
        name,
        init,
        body,
        cond,
        expect,
    })
}

/// Parse the init/condition/expect trailers shared by both frontends.
#[allow(clippy::type_complexity)]
fn parse_trailers(
    s: &Sections,
    locs: &mut LocTable,
) -> Result<(BTreeMap<Loc, Val>, Condition, Option<Expectation>), ParseError> {
    let init = match &s.init {
        None => BTreeMap::new(),
        Some((n, text)) => parse_init(text, locs, *n).map_err(|e| in_test(&s.name, e))?,
    };
    let condition = match &s.cond {
        None => Condition::trivial(),
        Some((n, text)) => parse_condition(text, locs, *n).map_err(|e| in_test(&s.name, e))?,
    };
    let expect = match &s.expect {
        None => None,
        Some((n, text)) => {
            let rest = text.trim_start_matches("expect").trim();
            match rest {
                "allowed" => Some(Expectation::Allowed),
                "forbidden" => Some(Expectation::Forbidden),
                other => {
                    return Err(in_test(
                        &s.name,
                        ParseError {
                            message: format!("expect must be allowed/forbidden, got `{other}`"),
                            line: *n,
                        },
                    ))
                }
            }
        }
    };
    Ok((init, condition, expect))
}

/// Parse a litmus test from its textual form. A `LANG` header parses the
/// language-level frontend and returns its **ARM** compilation, with the
/// frontend test attached as [`LitmusTest::lang`] — recompile via
/// [`LangTest::compile`] for RISC-V.
///
/// # Errors
///
/// Returns a [`ParseError`] naming the test and the offending line.
pub fn parse_litmus(src: &str) -> Result<LitmusTest, ParseError> {
    let sections = split_sections(src)?;
    match sections.arch {
        HeaderArch::Lang => Ok(build_lang_test(&sections)?.compile(Arch::Arm)),
        HeaderArch::Hw(arch) => {
            let mut locs = LocTable::new();
            let mut threads = Vec::new();
            for section in split_body_threads(&sections.body) {
                let text: String = section.iter().map(|(_, l)| format!("{l}\n")).collect();
                threads.push(
                    parse_thread(&text, &mut locs)
                        .map_err(|e| in_test(&sections.name, remap_line(e, &section)))?,
                );
            }
            let program = Program::new(threads);
            let (init, condition, expect) = parse_trailers(&sections, &mut locs)?;
            Ok(LitmusTest {
                name: sections.name,
                arch,
                program: Arc::new(program),
                locs,
                init,
                condition,
                expect,
                loop_fuel: None,
                flat_conservative: false,
                lang: None,
            })
        }
    }
}

/// Parse a language-level litmus test (a `LANG` header). The body is
/// surface-language syntax; hardware-only syntax (e.g. `dmb.sy`,
/// `loadx`, `fence(rw, w)`) is rejected with a pointed error.
///
/// # Errors
///
/// Returns a [`ParseError`] naming the test and the offending line.
pub fn parse_lang_litmus(src: &str) -> Result<LangTest, ParseError> {
    let sections = split_sections(src)?;
    match sections.arch {
        HeaderArch::Lang => build_lang_test(&sections),
        HeaderArch::Hw(_) => Err(ParseError {
            message: format!(
                "test `{}` has a hardware architecture header; language-level tests \
                 start with `LANG <name>`",
                sections.name
            ),
            line: 1,
        }),
    }
}

fn build_lang_test(sections: &Sections) -> Result<LangTest, ParseError> {
    let mut locs = LocTable::new();
    let mut threads = Vec::new();
    for section in split_body_threads(&sections.body) {
        let text: String = section.iter().map(|(_, l)| format!("{l}\n")).collect();
        threads.push(
            promising_lang::parse_thread(&text, &mut locs)
                .map_err(|e| in_test(&sections.name, remap_line(e, &section)))?,
        );
    }
    let program = promising_lang::Program::new(threads);
    let (init, condition, expect) = parse_trailers(sections, &mut locs)?;
    Ok(LangTest {
        name: sections.name.clone(),
        program,
        locs,
        init,
        condition,
        expect,
        loop_fuel: None,
    })
}

/// Split numbered body lines into per-thread sections at `---` lines.
fn split_body_threads(body: &[(usize, String)]) -> Vec<Vec<(usize, String)>> {
    let mut sections = Vec::new();
    let mut current = Vec::new();
    for (n, line) in body {
        if line.trim() == "---" {
            sections.push(std::mem::take(&mut current));
        } else {
            current.push((*n, line.clone()));
        }
    }
    sections.push(current);
    sections
}

/// Map a section-relative error line back to the original source line.
fn remap_line(mut e: ParseError, section: &[(usize, String)]) -> ParseError {
    if e.line >= 1 && e.line <= section.len() {
        e.line = section[e.line - 1].0;
    }
    e
}

fn parse_init(
    text: &str,
    locs: &mut LocTable,
    line: usize,
) -> Result<BTreeMap<Loc, Val>, ParseError> {
    let inner = text
        .trim()
        .strip_prefix('{')
        .and_then(|t| t.strip_suffix('}'))
        .ok_or_else(|| ParseError {
            message: "init section must be `{ x=1; y=2 }` on one line".into(),
            line,
        })?;
    let mut out = BTreeMap::new();
    for item in inner.split(';') {
        let item = item.trim();
        if item.is_empty() {
            continue;
        }
        let (name, val) = item.split_once('=').ok_or_else(|| ParseError {
            message: format!("bad init item `{item}`"),
            line,
        })?;
        let v: i64 = val.trim().parse().map_err(|_| ParseError {
            message: format!("bad init value `{val}`"),
            line,
        })?;
        out.insert(locs.intern(name.trim()), Val(v));
    }
    Ok(out)
}

/// Parse `exists (P1:r1=1 /\ (P1:r2=0 \/ ~x=2))` / `forall (…)`.
fn parse_condition(text: &str, locs: &mut LocTable, line: usize) -> Result<Condition, ParseError> {
    let (quantifier, rest) = if let Some(r) = text.strip_prefix("exists") {
        (Quantifier::Exists, r)
    } else if let Some(r) = text.strip_prefix("forall") {
        (Quantifier::Forall, r)
    } else {
        return Err(ParseError {
            message: "condition must start with exists/forall".into(),
            line,
        });
    };
    let mut p = CondParser {
        chars: rest.trim().chars().collect(),
        pos: 0,
        locs,
        line,
    };
    let pred = p.or_expr()?;
    p.skip_ws();
    if p.pos != p.chars.len() {
        return Err(ParseError {
            message: "trailing input in condition".into(),
            line,
        });
    }
    Ok(Condition { quantifier, pred })
}

struct CondParser<'a> {
    chars: Vec<char>,
    pos: usize,
    locs: &'a mut LocTable,
    line: usize,
}

impl CondParser<'_> {
    fn err(&self, msg: impl Into<String>) -> ParseError {
        ParseError {
            message: msg.into(),
            line: self.line,
        }
    }

    fn skip_ws(&mut self) {
        while self.pos < self.chars.len() && self.chars[self.pos].is_whitespace() {
            self.pos += 1;
        }
    }

    fn eat(&mut self, s: &str) -> bool {
        self.skip_ws();
        let sc: Vec<char> = s.chars().collect();
        if self.chars[self.pos..].starts_with(&sc) {
            self.pos += sc.len();
            true
        } else {
            false
        }
    }

    fn or_expr(&mut self) -> Result<Pred, ParseError> {
        let first = self.and_expr()?;
        let mut rest = Vec::new();
        while self.eat("\\/") {
            rest.push(self.and_expr()?);
        }
        Ok(if rest.is_empty() {
            first
        } else {
            let mut parts = vec![first];
            parts.append(&mut rest);
            Pred::Or(parts)
        })
    }

    fn and_expr(&mut self) -> Result<Pred, ParseError> {
        let first = self.atom()?;
        let mut rest = Vec::new();
        while self.eat("/\\") {
            rest.push(self.atom()?);
        }
        Ok(if rest.is_empty() {
            first
        } else {
            let mut parts = vec![first];
            parts.append(&mut rest);
            Pred::And(parts)
        })
    }

    fn atom(&mut self) -> Result<Pred, ParseError> {
        self.skip_ws();
        if self.eat("~") {
            return Ok(Pred::Not(Box::new(self.atom()?)));
        }
        if self.eat("(") {
            let p = self.or_expr()?;
            if !self.eat(")") {
                return Err(self.err("expected `)`"));
            }
            return Ok(p);
        }
        if self.eat("true") {
            return Ok(Pred::True);
        }
        // Pn:rM=v or name=v
        let start = self.pos;
        while self.pos < self.chars.len()
            && (self.chars[self.pos].is_ascii_alphanumeric()
                || matches!(self.chars[self.pos], '_' | ':' | '.'))
        {
            self.pos += 1;
        }
        let ident: String = self.chars[start..self.pos].iter().collect();
        if ident.is_empty() {
            return Err(self.err("expected condition atom"));
        }
        if !self.eat("=") {
            return Err(self.err(format!("expected `=` after `{ident}`")));
        }
        self.skip_ws();
        let vstart = self.pos;
        if self.pos < self.chars.len() && self.chars[self.pos] == '-' {
            self.pos += 1;
        }
        while self.pos < self.chars.len() && self.chars[self.pos].is_ascii_digit() {
            self.pos += 1;
        }
        let vtext: String = self.chars[vstart..self.pos].iter().collect();
        let val: i64 = vtext
            .parse()
            .map_err(|_| self.err(format!("bad value `{vtext}`")))?;

        if let Some((proc_part, reg_part)) = ident.split_once(':') {
            let tid: usize = proc_part
                .strip_prefix('P')
                .and_then(|d| d.parse().ok())
                .ok_or_else(|| self.err(format!("bad thread `{proc_part}`")))?;
            let reg: u32 = reg_part
                .strip_prefix('r')
                .and_then(|d| d.parse().ok())
                .ok_or_else(|| self.err(format!("bad register `{reg_part}`")))?;
            Ok(Pred::RegEq {
                tid,
                reg: Reg(reg),
                val: Val(val),
            })
        } else {
            Ok(Pred::LocEq {
                loc: self.locs.intern(&ident),
                val: Val(val),
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const MP: &str = "\
ARM MP+dmb.sy+addr
store(x, 1)
dmb.sy
store(y, 1)
---
r1 = load(y)
r2 = load(x + (r1 - r1))
exists (P1:r1=1 /\\ P1:r2=0)
expect forbidden
";

    #[test]
    fn malformed_litmus_files_error_without_panicking() {
        // User-input paths must degrade to ParseError, never panic.
        for src in [
            "",
            "ARM",
            "ARM \n",
            "BOGUS T\nstore(x, 1)",
            "ARM T",
            "ARM T\nexists",
            "ARM T\nexists (",
            "ARM T\nexists ()",
            "ARM T\nexists (P0:r1)",
            "ARM T\nexists (P0:r1=)",
            "ARM T\nexists (Px:r1=0)",
            "ARM T\nexists (P0:r1=0 /\\)",
            "ARM T\nexists (P0:r1=0 \\/)",
            "ARM T\nexists (~)",
            "ARM T\nexists (((P0:r1=0)",
            "ARM T\ninit { x=1",
            "ARM T\ninit x=1 }",
            "ARM T\ninit { x }",
            "ARM T\ninit { =1 }",
            "ARM T\nstore(x, 1)\nexpect maybe",
            "ARM T\nstore(\nexists (P0:r1=0)",
            "ARM T\n---\n---\n---\nexists true",
            "LANG T",
            "LANG T\nstore(x, 1, bogus)",
            "LANG T\nstore(x, 1, rlx)\nexists (P0:r1=",
            "ARM T\nfuel -3\nstore(x, 1)",
            "ARM T\nfuel\nstore(x, 1)",
        ] {
            // Ok or Err both fine; a panic fails the harness.
            let _ = parse_litmus(src);
            let _ = parse_lang_litmus(src);
        }
    }

    #[test]
    fn parses_full_test() {
        let t = parse_litmus(MP).unwrap();
        assert_eq!(t.name, "MP+dmb.sy+addr");
        assert_eq!(t.arch, Arch::Arm);
        assert_eq!(t.program.num_threads(), 2);
        assert_eq!(t.expect, Some(Expectation::Forbidden));
        assert_eq!(t.condition.quantifier, Quantifier::Exists);
    }

    #[test]
    fn parses_init_section() {
        let src = "RISCV init-test\n{ x=5; y=7 }\nr1 = load(x)\nexists (P0:r1=5)";
        let t = parse_litmus(src).unwrap();
        assert_eq!(t.arch, Arch::RiscV);
        let x = t.locs.get("x").unwrap();
        let y = t.locs.get("y").unwrap();
        assert_eq!(t.init.get(&x), Some(&Val(5)));
        assert_eq!(t.init.get(&y), Some(&Val(7)));
    }

    #[test]
    fn parses_memory_conditions_and_connectives() {
        let src = "ARM t\nstore(x, 1)\nexists (x=1 \\/ (~x=2 /\\ true))";
        let t = parse_litmus(src).unwrap();
        match &t.condition.pred {
            Pred::Or(ps) => assert_eq!(ps.len(), 2),
            other => panic!("expected Or, got {other:?}"),
        }
    }

    #[test]
    fn forall_conditions_parse() {
        let src = "ARM t\nstore(x, 1)\nforall (x=1)";
        let t = parse_litmus(src).unwrap();
        assert_eq!(t.condition.quantifier, Quantifier::Forall);
    }

    #[test]
    fn rejects_unknown_arch() {
        let src = "X86 t\nstore(x, 1)\nexists (x=1)";
        assert!(parse_litmus(src).is_err());
    }

    #[test]
    fn rejects_garbage_after_condition() {
        let src = "ARM t\nstore(x, 1)\nexists (x=1)\nstore(y, 2)";
        assert!(parse_litmus(src).is_err());
    }

    #[test]
    fn negative_values_in_conditions() {
        let src = "ARM t\nstore(x, 0 - 3)\nexists (x=-3)";
        let t = parse_litmus(src).unwrap();
        assert!(matches!(t.condition.pred, Pred::LocEq { val: Val(-3), .. }));
    }

    #[test]
    fn parse_errors_name_the_test() {
        let src = "ARM MP+broken\nstore(x, 1)\n???\nexists (x=1)";
        let err = parse_litmus(src).unwrap_err();
        assert!(err.message.contains("MP+broken"), "{}", err.message);
        assert_eq!(err.line, 3);
        // …and in the init/condition trailers too
        let err = parse_litmus("ARM T2\n{ x=oops }\nstore(x, 1)\nexists (x=1)").unwrap_err();
        assert!(err.message.contains("T2"), "{}", err.message);
        let err = parse_litmus("ARM T3\nstore(x, 1)\nexists (x=)").unwrap_err();
        assert!(err.message.contains("T3"), "{}", err.message);
    }

    const LANG_MP: &str = "\
LANG MP+rel+acq
store(x, 1, rlx)
store(y, 1, rel)
---
r1 = load(y, acq)
r2 = load(x, rlx)
exists (P1:r1=1 /\\ P1:r2=0)
expect forbidden
";

    #[test]
    fn lang_header_parses_and_compiles_to_arm_by_default() {
        let t = parse_litmus(LANG_MP).unwrap();
        assert_eq!(t.name, "MP+rel+acq");
        assert_eq!(t.arch, Arch::Arm);
        assert_eq!(t.expect, Some(Expectation::Forbidden));
        let lang = t.lang.as_ref().expect("frontend source attached");
        assert_eq!(lang.program.num_threads(), 2);
        // recompiling for RISC-V places fences instead of strengths
        let riscv = lang.compile(Arch::RiscV);
        assert_eq!(riscv.arch, Arch::RiscV);
        assert!(riscv.program.instruction_count() > t.program.instruction_count());
    }

    #[test]
    fn parse_lang_litmus_returns_the_uncompiled_test() {
        let t = parse_lang_litmus(LANG_MP).unwrap();
        assert_eq!(t.name, "MP+rel+acq");
        assert_eq!(t.program.access_count(), 4);
        assert!(parse_lang_litmus(MP).is_err(), "hardware headers rejected");
    }

    #[test]
    fn lang_header_rejects_hardware_syntax_with_pointed_error() {
        let src = "LANG bad\nstore(x, 1, rlx)\ndmb.sy\nexists (x=1)";
        let err = parse_litmus(src).unwrap_err();
        assert!(err.message.contains("bad"), "{}", err.message);
        assert!(err.message.contains("dmb.sy"), "{}", err.message);
        assert!(err.message.contains("fence(sc)"), "{}", err.message);
        let src = "LANG bad2\nfence(rw, w)\nexists (x=1)";
        let err = parse_litmus(src).unwrap_err();
        assert!(err.message.contains("access-set"), "{}", err.message);
    }

    #[test]
    fn lang_init_sections_and_conditions_share_locations() {
        let src = "LANG init\n{ x=5 }\nr1 = cas(x, 5, 9, rlx)\nexists (P0:r1=5 /\\ x=9)";
        let t = parse_lang_litmus(src).unwrap();
        let x = t.locs.get("x").unwrap();
        assert_eq!(t.init.get(&x), Some(&Val(5)));
    }

    #[test]
    fn condition_locations_share_the_program_table() {
        let src = "ARM t\nstore(x, 1)\n---\nr1 = load(x)\nexists (P1:r1=1 /\\ x=1)";
        let t = parse_litmus(src).unwrap();
        // x in the condition is the same Loc as in the program
        match &t.condition.pred {
            Pred::And(ps) => match &ps[1] {
                Pred::LocEq { loc, .. } => assert_eq!(*loc, t.locs.get("x").unwrap()),
                other => panic!("expected LocEq, got {other:?}"),
            },
            other => panic!("expected And, got {other:?}"),
        }
    }
}
