//! Promise-first exhaustive exploration (§7, Theorem 7.1).
//!
//! For every trace of the Promising machine there is an equivalent trace in
//! which *all promises come first*. The search therefore runs in two
//! phases:
//!
//! 1. **Promise mode** — interleave only promise transitions (each
//!    validated by `find_and_certify`), enumerating all reachable
//!    memories. Thread continuations never advance in this phase.
//! 2. **Non-promise mode** — a memory is *final* if every thread can run
//!    to completion under it without appending any write (stores only
//!    fulfil already-promised messages). Since the memory is fixed, each
//!    thread executes completely independently: no read interleaving, and
//!    the outcome set of the memory is the product of the per-thread
//!    outcome sets.
//!
//! This removes the read-interleaving blow-up that dominates the naive
//! search and is the optimisation behind the paper's Table 2/3 results.

use crate::naive::Exploration;
use promising_core::Outcome;
use crate::stats::Stats;
use promising_core::stmt::SCRATCH_REG_BASE;
use promising_core::{
    apply_step, enabled_steps, find_and_certify, Machine, Memory, Msg, Reg, ThreadInstance,
    TransitionKind, Val,
};
use promising_core::ids::TId;
use promising_core::Transition;
use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};
use std::rc::Rc;
use std::time::Instant;

type RegMap = BTreeMap<Reg, Val>;

/// Exhaustively explore `machine` promise-first, returning the same
/// outcome set as [`crate::naive::explore_naive`] (Theorem 7.1).
pub fn explore_promise_first(machine: &Machine) -> Exploration {
    explore_promise_first_deadline(machine, None)
}

/// Like [`explore_promise_first`], but giving up (with `stats.truncated`)
/// once `deadline` has elapsed — the "out of time" guard for the
/// benchmark tables.
pub fn explore_promise_first_deadline(
    machine: &Machine,
    deadline: Option<std::time::Duration>,
) -> Exploration {
    let start = Instant::now();
    let mut stats = Stats::default();
    let mut outcomes = BTreeSet::new();

    // Promise-mode search over (memory, promise-sets) states.
    let mut visited: HashSet<(Vec<BTreeSet<promising_core::Timestamp>>, Memory)> = HashSet::new();
    let mut stack = vec![machine.clone()];
    visited.insert(promise_key(machine));

    // Cache of promisable sets, keyed by the acting thread's promise set
    // and the memory (the rest of the thread state never changes in
    // promise mode).
    let mut promise_cache: HashMap<(TId, BTreeSet<promising_core::Timestamp>, Memory), BTreeSet<Msg>> =
        HashMap::new();

    while let Some(m) = stack.pop() {
        stats.states += 1;
        if let Some(d) = deadline {
            if start.elapsed() > d {
                stats.truncated = true;
                break;
            }
        }

        // Phase-2 check: is this memory final (all threads completable)?
        let mut per_thread: Vec<Rc<BTreeSet<RegMap>>> = Vec::with_capacity(m.num_threads());
        let mut all_complete = true;
        for tid in (0..m.num_threads()).map(TId) {
            let set = thread_outcomes(&m, tid, &mut stats);
            if set.is_empty() {
                all_complete = false;
                break;
            }
            per_thread.push(set);
        }
        if all_complete {
            stats.final_memories += 1;
            let memory: BTreeMap<_, _> = m
                .memory()
                .locations()
                .into_iter()
                .map(|l| (l, m.memory().final_value(l)))
                .collect();
            let mut regs_product: Vec<Vec<RegMap>> = vec![Vec::new()];
            for set in &per_thread {
                let mut next = Vec::with_capacity(regs_product.len() * set.len());
                for prefix in &regs_product {
                    for regs in set.iter() {
                        let mut p = prefix.clone();
                        p.push(regs.clone());
                        next.push(p);
                    }
                }
                regs_product = next;
            }
            for regs in regs_product {
                outcomes.insert(Outcome {
                    regs,
                    memory: memory.clone(),
                });
            }
        }

        // Expand: all certified promises of all threads.
        for tid in (0..m.num_threads()).map(TId) {
            let key = (
                tid,
                m.thread(tid).state.prom.clone(),
                m.memory().clone(),
            );
            let promisable = match promise_cache.get(&key) {
                Some(p) => p.clone(),
                None => {
                    stats.certifications += 1;
                    let p = find_and_certify(&m, tid).promisable;
                    promise_cache.insert(key, p.clone());
                    p
                }
            };
            for msg in promisable {
                let mut next = m.clone();
                next.apply(&Transition::new(tid, TransitionKind::Promise { msg }))
                    .expect("certified promise applies");
                stats.transitions += 1;
                let k = promise_key(&next);
                if visited.insert(k) {
                    stack.push(next);
                }
            }
        }
    }

    stats.duration = start.elapsed();
    Exploration { outcomes, stats }
}

fn promise_key(m: &Machine) -> (Vec<BTreeSet<promising_core::Timestamp>>, Memory) {
    (
        m.threads().iter().map(|t| t.state.prom.clone()).collect(),
        m.memory().clone(),
    )
}

/// All final register valuations thread `tid` can reach running alone under
/// the machine's (fixed) memory, taking no write-appending steps. Empty if
/// the thread cannot complete (some promise unfulfillable, or it cannot
/// terminate).
fn thread_outcomes(m: &Machine, tid: TId, stats: &mut Stats) -> Rc<BTreeSet<RegMap>> {
    let code = &m.program().threads()[tid.0];
    let mut memory = m.memory().clone();
    let mut memo: HashMap<ThreadInstance, Rc<BTreeSet<RegMap>>> = HashMap::new();
    let mem_len = memory.len();
    let result = thread_dfs(m, tid, code, m.thread(tid), &mut memory, &mut memo, stats);
    debug_assert_eq!(memory.len(), mem_len, "phase 2 must not append writes");
    result
}

fn thread_dfs(
    m: &Machine,
    tid: TId,
    code: &promising_core::ThreadCode,
    thread: &ThreadInstance,
    memory: &mut Memory,
    memo: &mut HashMap<ThreadInstance, Rc<BTreeSet<RegMap>>>,
    stats: &mut Stats,
) -> Rc<BTreeSet<RegMap>> {
    if let Some(hit) = memo.get(thread) {
        return Rc::clone(hit);
    }
    let mut out = BTreeSet::new();
    if thread.is_done() {
        if !thread.state.has_promises() && thread.state.stuck.is_none() {
            out.insert(observable_regs(thread));
        }
    } else if thread.state.stuck.is_some() {
        stats.bound_hits += 1;
    } else {
        for kind in enabled_steps(m.config(), code, tid, thread, memory) {
            if kind == TransitionKind::WriteNormal {
                continue; // non-promise mode: no new writes
            }
            let mut th = thread.clone();
            apply_step(m.config(), code, tid, &kind, &mut th, memory)
                .expect("enabled step applies");
            stats.transitions += 1;
            let sub = thread_dfs(m, tid, code, &th, memory, memo, stats);
            out.extend(sub.iter().cloned());
        }
    }
    let rc = Rc::new(out);
    memo.insert(thread.clone(), Rc::clone(&rc));
    rc
}

fn observable_regs(thread: &ThreadInstance) -> RegMap {
    thread
        .state
        .regs
        .iter()
        .filter(|(r, _, _)| r.0 < SCRATCH_REG_BASE)
        .map(|(r, v, _)| (r, v))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::naive::{explore_naive, CertMode};
    use promising_core::{CodeBuilder, Config, Expr, Program};
    use std::sync::Arc;

    fn check_agrees_with_naive(program: Arc<Program>, config: Config) {
        let m = Machine::new(program, config);
        let fast = explore_promise_first(&m);
        let slow = explore_naive(&m, CertMode::Online);
        assert_eq!(
            fast.outcomes, slow.outcomes,
            "promise-first and naive exploration must agree (Thm 7.1)"
        );
    }

    #[test]
    fn agrees_on_mp() {
        let mut b = CodeBuilder::new();
        let s1 = b.store(Expr::val(0), Expr::val(37));
        let s2 = b.dmb_sy();
        let s3 = b.store(Expr::val(1), Expr::val(42));
        let t1 = b.finish_seq(&[s1, s2, s3]);
        let mut b = CodeBuilder::new();
        let l1 = b.load(Reg(1), Expr::val(1));
        let l2 = b.load(Reg(2), Expr::val(0));
        let t2 = b.finish_seq(&[l1, l2]);
        check_agrees_with_naive(Arc::new(Program::new(vec![t1, t2])), Config::arm());
    }

    #[test]
    fn agrees_on_lb_with_dependency() {
        let mut b = CodeBuilder::new();
        let a = b.load(Reg(1), Expr::val(0));
        let s = b.store(Expr::val(1), Expr::reg(Reg(1)));
        let t1 = b.finish_seq(&[a, s]);
        let mut b = CodeBuilder::new();
        let c = b.load(Reg(2), Expr::val(1));
        let d = b.store(Expr::val(0), Expr::val(42));
        let t2 = b.finish_seq(&[c, d]);
        check_agrees_with_naive(Arc::new(Program::new(vec![t1, t2])), Config::arm());
    }

    #[test]
    fn agrees_on_sb_with_fences() {
        let mut b = CodeBuilder::new();
        let s = b.store(Expr::val(0), Expr::val(1));
        let f = b.dmb_sy();
        let l = b.load(Reg(1), Expr::val(1));
        let t1 = b.finish_seq(&[s, f, l]);
        let mut b = CodeBuilder::new();
        let s = b.store(Expr::val(1), Expr::val(1));
        let f = b.dmb_sy();
        let l = b.load(Reg(2), Expr::val(0));
        let t2 = b.finish_seq(&[s, f, l]);
        check_agrees_with_naive(Arc::new(Program::new(vec![t1, t2])), Config::arm());
    }

    #[test]
    fn agrees_on_exclusive_increment_race() {
        // Two threads, each one ldx/stx increment attempt (may fail).
        let mk = || {
            let mut b = CodeBuilder::new();
            let l = b.load_excl(Reg(1), Expr::val(0));
            let s = b.store_excl(Reg(2), Expr::val(0), Expr::reg(Reg(1)).add(Expr::val(1)));
            b.finish_seq(&[l, s])
        };
        check_agrees_with_naive(Arc::new(Program::new(vec![mk(), mk()])), Config::arm());
        check_agrees_with_naive(Arc::new(Program::new(vec![mk(), mk()])), Config::riscv());
    }

    #[test]
    fn agrees_on_ppoca() {
        // PPOCA (§2): forwarding a speculative-in-hardware write.
        let mut b = CodeBuilder::new();
        let s1 = b.store(Expr::val(0), Expr::val(37));
        let f = b.dmb_sy();
        let s2 = b.store(Expr::val(1), Expr::val(42));
        let t1 = b.finish_seq(&[s1, f, s2]);
        let mut b = CodeBuilder::new();
        let d = b.load(Reg(0), Expr::val(1));
        let i = b.store(Expr::val(2), Expr::val(51));
        let j = b.load(Reg(1), Expr::val(2));
        let fl = b.load(Reg(2), Expr::val(0).with_dep(Reg(1)));
        let body = b.seq(&[i, j, fl]);
        let br = b.if_then(Expr::reg(Reg(0)).eq(Expr::val(42)), body);
        let t2 = b.finish_seq(&[d, br]);
        let program = Arc::new(Program::new(vec![t1, t2]));
        let m = Machine::new(Arc::clone(&program), Config::arm());
        let exp = explore_promise_first(&m);
        // the PPOCA outcome r0=42 ∧ r1=51 ∧ r2=0 must be allowed
        assert!(
            exp.outcomes.iter().any(|o| o.reg(1, Reg(0)) == Val(42)
                && o.reg(1, Reg(1)) == Val(51)
                && o.reg(1, Reg(2)) == Val(0)),
            "PPOCA must be allowed"
        );
        check_agrees_with_naive(program, Config::arm());
    }

    #[test]
    fn final_memories_counted() {
        let mut b = CodeBuilder::new();
        let s = b.store(Expr::val(0), Expr::val(1));
        let t1 = b.finish_seq(&[s]);
        let m = Machine::new(Arc::new(Program::new(vec![t1])), Config::arm());
        let exp = explore_promise_first(&m);
        // exactly one final memory: [x := 1]
        assert_eq!(exp.stats.final_memories, 1);
        assert_eq!(exp.outcomes.len(), 1);
    }
}
