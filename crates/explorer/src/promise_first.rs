//! Promise-first exhaustive exploration (§7, Theorem 7.1).
//!
//! For every trace of the Promising machine there is an equivalent trace in
//! which *all promises come first*. The search therefore runs in two
//! phases:
//!
//! 1. **Promise mode** — interleave only promise transitions (each
//!    validated by `find_and_certify`), enumerating all reachable
//!    memories. Thread continuations never advance in this phase.
//! 2. **Non-promise mode** — a memory is *final* if every thread can run
//!    to completion under it without appending any write (stores only
//!    fulfil already-promised messages). Since the memory is fixed, each
//!    thread executes completely independently: no read interleaving, and
//!    the outcome set of the memory is the product of the per-thread
//!    outcome sets.
//!
//! This removes the read-interleaving blow-up that dominates the naive
//! search and is the optimisation behind the paper's Table 2/3 results.
//!
//! The strategy is a [`SearchModel`] ([`PromiseFirstModel`]) run by the
//! generic [`Engine`]: promise-mode states are deduplicated by a
//! fingerprint of (per-thread promise sets, memory); the phase-2
//! all-threads-completable check is the model's *outcome* hook, run on
//! every promise-mode state. Certification and the phase-2 per-thread
//! searches are memoised *within* each state's work (fingerprint keys);
//! unlike the naive strategy, the memos are not shared across states —
//! every promise-mode state has a distinct memory, so cross-state keys
//! could never hit and a shared table would only grow without bound.
//! `Config::workers > 1` explores the promise frontier in parallel with
//! identical outcome sets.

use crate::engine::{Engine, Exploration, SearchBudget, SearchModel};
use crate::stats::{Stats, StopReason};
use promising_core::ids::TId;
use promising_core::stmt::SCRATCH_REG_BASE;
use promising_core::Outcome;
use promising_core::Transition;
use promising_core::{
    apply_step, enabled_steps, find_promises_with, CertMemo, Config, Fingerprint, Footprint,
    FpHashMap, FpHasher, Machine, Memory, Reg, ThreadInstance, Timestamp, TransitionKind,
};
use std::collections::{BTreeMap, BTreeSet};
use std::rc::Rc;
use std::time::Instant;

type RegMap = BTreeMap<Reg, promising_core::Val>;

/// Exact promise-mode state identity (paranoid dedup): the per-thread
/// promise sets and the memory — the only parts that change in phase 1.
type PromiseKey = (Vec<BTreeSet<Timestamp>>, Memory);

fn promise_fp(m: &Machine) -> Fingerprint {
    let mut h = FpHasher::new();
    h.write_len(m.num_threads());
    for t in m.threads() {
        h.write_len(t.state.prom.len());
        for ts in &t.state.prom {
            h.write_u32(ts.0);
        }
    }
    m.memory().feed(&mut h);
    h.finish128()
}

fn promise_key(m: &Machine) -> PromiseKey {
    (
        m.threads().iter().map(|t| t.state.prom.clone()).collect(),
        m.memory().clone(),
    )
}

/// Exact phase-2 sub-problem identity, stored in paranoid mode only.
type Phase2Exact = (TId, ThreadInstance, Memory);

/// Memo of phase-2 per-thread outcome sets, keyed by a fingerprint of
/// (thread id, thread instance, memory). The thread id is part of the
/// key because two threads running *different* code can still have
/// identical dynamic instances (e.g. the two IRIW readers in their
/// initial states). Paranoid mode stores the exact key and panics on
/// collisions.
struct Phase2Memo {
    paranoid: bool,
    map: FpHashMap<(Option<Phase2Exact>, Rc<BTreeSet<RegMap>>)>,
}

impl Phase2Memo {
    fn new(paranoid: bool) -> Phase2Memo {
        Phase2Memo {
            paranoid,
            map: FpHashMap::default(),
        }
    }

    fn key(tid: TId, thread: &ThreadInstance, mem_fp: Fingerprint) -> Fingerprint {
        let mut h = FpHasher::new();
        h.write_len(tid.0);
        h.write_u64(mem_fp.0 as u64);
        h.write_u64((mem_fp.0 >> 64) as u64);
        thread.feed(&mut h);
        h.finish128()
    }

    fn get(
        &self,
        fp: Fingerprint,
        tid: TId,
        thread: &ThreadInstance,
        memory: &Memory,
    ) -> Option<Rc<BTreeSet<RegMap>>> {
        let (exact, value) = self.map.get(&fp)?;
        if let Some((etid, eth, emem)) = exact {
            assert!(
                *etid == tid && eth == thread && emem == memory,
                "phase-2 memo fingerprint collision at {fp}"
            );
        }
        Some(Rc::clone(value))
    }

    fn insert(
        &mut self,
        fp: Fingerprint,
        tid: TId,
        thread: &ThreadInstance,
        memory: &Memory,
        value: Rc<BTreeSet<RegMap>>,
    ) {
        let exact = self.paranoid.then(|| (tid, thread.clone(), memory.clone()));
        self.map.insert(fp, (exact, value));
    }
}

/// Per-worker cache for the promise-first model. Under the exhaustive
/// scheduler it is empty: dedup guarantees every promise-mode state is
/// expanded once, and distinct states have distinct memories, so a
/// cross-state phase-2 memo could never hit and would only grow. Under
/// the sampling scheduler there is no visited set — walks revisit the
/// root and shared promise prefixes on every trace — so a shared
/// phase-2 memo turns those repeated per-thread searches into lookups.
pub struct PromiseFirstCache {
    shared_phase2: Option<Phase2Memo>,
}

/// The promise-first strategy as a [`SearchModel`]: states are promise-mode
/// [`Machine`]s (only promise sets and the memory evolve), transitions are
/// certified promises, and the outcome hook is the phase-2 final-memory
/// check — the per-thread independent runs whose register products are the
/// memory's outcomes.
pub struct PromiseFirstModel {
    root: Machine,
}

impl PromiseFirstModel {
    /// The promise-first strategy rooted at `machine`.
    pub fn new(machine: &Machine) -> PromiseFirstModel {
        PromiseFirstModel {
            root: machine.clone(),
        }
    }
}

impl SearchModel for PromiseFirstModel {
    type State = Machine;
    type Transition = Transition;
    type Exact = PromiseKey;
    type Out = Outcome;
    type Cache = PromiseFirstCache;

    /// Running out of certifiable promises is the normal end of phase 1,
    /// not a deadlock.
    const DEADLOCK_ON_EMPTY: bool = false;

    fn config(&self) -> &Config {
        self.root.config()
    }

    fn root(&self, _stats: &mut Stats) -> Machine {
        self.root.clone()
    }

    fn cache(&self) -> PromiseFirstCache {
        PromiseFirstCache {
            shared_phase2: None,
        }
    }

    fn walk_cache(&self) -> PromiseFirstCache {
        PromiseFirstCache {
            shared_phase2: Some(Phase2Memo::new(self.config().paranoid)),
        }
    }

    fn fingerprint(&self, s: &Machine) -> Fingerprint {
        promise_fp(s)
    }

    fn exact_key(&self, s: &Machine) -> PromiseKey {
        promise_key(s)
    }

    fn outcome(
        &self,
        m: &Machine,
        cache: &mut PromiseFirstCache,
        stats: &mut Stats,
        deadline: Option<Instant>,
        out: &mut BTreeSet<Outcome>,
    ) {
        // Phase-2 check: is this memory final (all threads completable)?
        let config = self.config();
        let mem_fp = {
            let mut h = FpHasher::new();
            m.memory().feed(&mut h);
            h.finish128()
        };
        // Per-state memo when exhaustive, worker-shared when sampling
        // (the memo key includes the memory fingerprint, so sharing is
        // sound either way — see `PromiseFirstCache`).
        let mut local_phase2;
        let phase2 = match cache.shared_phase2.as_mut() {
            Some(shared) => shared,
            None => {
                local_phase2 = Phase2Memo::new(config.paranoid);
                &mut local_phase2
            }
        };
        let mut per_thread: Vec<Rc<BTreeSet<RegMap>>> = Vec::with_capacity(m.num_threads());
        let mut all_complete = true;
        let mut cut = false;
        for tid in (0..m.num_threads()).map(TId) {
            let set = thread_outcomes(m, tid, mem_fp, phase2, stats, deadline, &mut cut);
            if cut {
                // the per-thread search outran the wall clock: the outcome
                // set is a lower bound from here on
                stats.note_stop(StopReason::DeadlineExceeded);
                return;
            }
            if set.is_empty() {
                all_complete = false;
                break;
            }
            per_thread.push(set);
        }
        if all_complete {
            stats.final_memories += 1;
            let memory: BTreeMap<_, _> = m
                .memory()
                .locations()
                .into_iter()
                .map(|loc| (loc, m.memory().final_value(loc)))
                .collect();
            let mut regs_product: Vec<Vec<RegMap>> = vec![Vec::new()];
            for set in &per_thread {
                let mut next = Vec::with_capacity(regs_product.len() * set.len());
                for prefix in &regs_product {
                    for regs in set.iter() {
                        let mut p = prefix.clone();
                        p.push(regs.clone());
                        next.push(p);
                    }
                }
                regs_product = next;
            }
            for regs in regs_product {
                out.insert(Outcome {
                    regs,
                    memory: memory.clone(),
                });
            }
        }
    }

    /// Promise-mode states are never leaves: every state gets the phase-2
    /// outcome check *and* an attempted promise expansion.
    fn is_final(&self, _s: &Machine, _stats: &mut Stats) -> bool {
        false
    }

    fn expand(
        &self,
        m: &Machine,
        _cache: &mut PromiseFirstCache,
        stats: &mut Stats,
        deadline: Option<Instant>,
    ) -> Vec<Transition> {
        // All certified promises of all threads. The certification memo is
        // per-query: every promise-mode state has a distinct memory, so
        // cross-state keys never repeat (see the module docs).
        let config = self.config();
        let mut out = Vec::new();
        for tid in (0..m.num_threads()).map(TId) {
            stats.certifications += 1;
            let mut cert_memo = CertMemo::for_config(config);
            let (promisable, cut) = find_promises_with(m, tid, &mut cert_memo, deadline);
            let (hits, misses, survived) = cert_memo.counters();
            stats.cert_hits += hits;
            stats.cert_misses += misses;
            stats.cert_survived += survived;
            if cut {
                stats.note_stop(StopReason::DeadlineExceeded);
                return out;
            }
            for msg in promisable {
                out.push(Transition::new(tid, TransitionKind::Promise { msg }));
            }
        }
        out
    }

    fn apply(&self, s: &Machine, tr: &Transition, stats: &mut Stats) -> Machine {
        let mut next = s.clone();
        next.apply(tr).expect("certified promise applies");
        stats.transitions += 1;
        next
    }

    /// POR metadata. Promise-mode transitions are all promises — appends
    /// to memory's total order, pairwise dependent — so the footprint
    /// marks them append+promise and the engine's reduction pass (the
    /// default [`SearchModel::reduce`], a no-op) never prunes phase 1.
    /// Phase 2 needs no reduction either: each thread runs alone against
    /// a fixed memory, so there is no cross-thread interleaving left to
    /// reduce — the promise-first strategy *is* already the aggressive
    /// ordering reduction (Theorem 7.1), which is why the Table-2 heavy
    /// rows run it rather than the POR-reduced naive search.
    fn footprint(&self, s: &Machine, t: &Transition) -> Footprint {
        s.transition_footprint(t)
    }
}

/// Exhaustively explore `machine` promise-first, returning the same
/// outcome set as [`crate::naive::explore_naive`] (Theorem 7.1).
pub fn explore_promise_first(machine: &Machine) -> Exploration {
    explore_promise_first_budget(machine, SearchBudget::UNBOUNDED)
}

/// [`explore_promise_first`] under a [`SearchBudget`] — the "out of time"
/// guard for the benchmark tables. The wall-clock deadline also bounds
/// certification work inside promise enumeration and the phase-2
/// searches.
pub fn explore_promise_first_budget(machine: &Machine, budget: SearchBudget) -> Exploration {
    Engine::new(PromiseFirstModel::new(machine))
        .with_budget(budget)
        .run()
}

/// How many phase-2 nodes between wall-clock deadline checks.
const PHASE2_DEADLINE_CHECK_PERIOD: u64 = 256;

/// All final register valuations thread `tid` can reach running alone under
/// the machine's (fixed) memory, taking no write-appending steps. Empty if
/// the thread cannot complete (some promise unfulfillable, or it cannot
/// terminate). Memoised through `memo`, which the caller scopes to one
/// promise-mode state (cross-state sharing cannot hit — see the module
/// docs — but the memory is still part of the key so the memo stays
/// sound however it is scoped). Sets `cut` (and returns a partial set)
/// if `deadline` expires mid-search.
#[allow(clippy::too_many_arguments)]
fn thread_outcomes(
    m: &Machine,
    tid: TId,
    mem_fp: Fingerprint,
    memo: &mut Phase2Memo,
    stats: &mut Stats,
    deadline: Option<Instant>,
    cut: &mut bool,
) -> Rc<BTreeSet<RegMap>> {
    let code = &m.program().threads()[tid.0];
    let mut memory = m.memory().clone();
    let mem_len = memory.len();
    let mut dfs = ThreadDfs {
        m,
        tid,
        code,
        mem_fp,
        memo,
        stats,
        deadline,
        cut: false,
        ticks: 0,
    };
    let result = dfs.run(m.thread(tid), &mut memory);
    *cut |= dfs.cut;
    debug_assert_eq!(memory.len(), mem_len, "phase 2 must not append writes");
    result
}

struct ThreadDfs<'a> {
    m: &'a Machine,
    tid: TId,
    code: &'a promising_core::ThreadCode,
    mem_fp: Fingerprint,
    memo: &'a mut Phase2Memo,
    stats: &'a mut Stats,
    deadline: Option<Instant>,
    cut: bool,
    ticks: u64,
}

impl ThreadDfs<'_> {
    fn out_of_time(&mut self) -> bool {
        if self.cut {
            return true;
        }
        let Some(at) = self.deadline else {
            return false;
        };
        self.ticks += 1;
        if self.ticks >= PHASE2_DEADLINE_CHECK_PERIOD {
            self.ticks = 0;
            if Instant::now() >= at {
                self.cut = true;
                return true;
            }
        }
        false
    }

    fn run(&mut self, thread: &ThreadInstance, memory: &mut Memory) -> Rc<BTreeSet<RegMap>> {
        let fp = Phase2Memo::key(self.tid, thread, self.mem_fp);
        if let Some(hit) = self.memo.get(fp, self.tid, thread, memory) {
            return hit;
        }
        if self.out_of_time() {
            return Rc::new(BTreeSet::new());
        }
        let mut out = BTreeSet::new();
        if thread.is_done() {
            if !thread.state.has_promises() && thread.state.stuck.is_none() {
                out.insert(observable_regs(thread));
            }
        } else if thread.state.stuck.is_some() {
            self.stats.bound_hits += 1;
        } else {
            for kind in enabled_steps(self.m.config(), self.code, self.tid, thread, memory) {
                if kind.appends_write() {
                    continue; // non-promise mode: no new writes (stores
                              // and RMWs may only fulfil promises)
                }
                if self.cut {
                    break;
                }
                let mut th = thread.clone();
                apply_step(self.m.config(), self.code, self.tid, &kind, &mut th, memory)
                    .expect("enabled step applies");
                self.stats.transitions += 1;
                let sub = self.run(&th, memory);
                out.extend(sub.iter().cloned());
            }
        }
        let rc = Rc::new(out);
        if !self.cut {
            // deadline-truncated sets are partial; memoising them would
            // poison later queries
            self.memo
                .insert(fp, self.tid, thread, memory, Rc::clone(&rc));
        }
        rc
    }
}

fn observable_regs(thread: &ThreadInstance) -> RegMap {
    thread
        .state
        .regs
        .iter()
        .filter(|(r, _, _)| r.0 < SCRATCH_REG_BASE)
        .map(|(r, v, _)| (r, v))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::naive::{explore_naive, CertMode};
    use promising_core::{CodeBuilder, Expr, Program, Val};
    use std::sync::Arc;

    fn check_agrees_with_naive(program: Arc<Program>, config: Config) {
        let m = Machine::new(program, config);
        let fast = explore_promise_first(&m);
        let slow = explore_naive(&m, CertMode::Online);
        assert_eq!(
            fast.outcomes, slow.outcomes,
            "promise-first and naive exploration must agree (Thm 7.1)"
        );
    }

    #[test]
    fn agrees_on_mp() {
        let mut b = CodeBuilder::new();
        let s1 = b.store(Expr::val(0), Expr::val(37));
        let s2 = b.dmb_sy();
        let s3 = b.store(Expr::val(1), Expr::val(42));
        let t1 = b.finish_seq(&[s1, s2, s3]);
        let mut b = CodeBuilder::new();
        let l1 = b.load(Reg(1), Expr::val(1));
        let l2 = b.load(Reg(2), Expr::val(0));
        let t2 = b.finish_seq(&[l1, l2]);
        check_agrees_with_naive(Arc::new(Program::new(vec![t1, t2])), Config::arm());
    }

    #[test]
    fn agrees_on_lb_with_dependency() {
        let mut b = CodeBuilder::new();
        let a = b.load(Reg(1), Expr::val(0));
        let s = b.store(Expr::val(1), Expr::reg(Reg(1)));
        let t1 = b.finish_seq(&[a, s]);
        let mut b = CodeBuilder::new();
        let c = b.load(Reg(2), Expr::val(1));
        let d = b.store(Expr::val(0), Expr::val(42));
        let t2 = b.finish_seq(&[c, d]);
        check_agrees_with_naive(Arc::new(Program::new(vec![t1, t2])), Config::arm());
    }

    #[test]
    fn agrees_on_sb_with_fences() {
        let mut b = CodeBuilder::new();
        let s = b.store(Expr::val(0), Expr::val(1));
        let f = b.dmb_sy();
        let l = b.load(Reg(1), Expr::val(1));
        let t1 = b.finish_seq(&[s, f, l]);
        let mut b = CodeBuilder::new();
        let s = b.store(Expr::val(1), Expr::val(1));
        let f = b.dmb_sy();
        let l = b.load(Reg(2), Expr::val(0));
        let t2 = b.finish_seq(&[s, f, l]);
        check_agrees_with_naive(Arc::new(Program::new(vec![t1, t2])), Config::arm());
    }

    #[test]
    fn agrees_on_exclusive_increment_race() {
        // Two threads, each one ldx/stx increment attempt (may fail).
        let mk = || {
            let mut b = CodeBuilder::new();
            let l = b.load_excl(Reg(1), Expr::val(0));
            let s = b.store_excl(Reg(2), Expr::val(0), Expr::reg(Reg(1)).add(Expr::val(1)));
            b.finish_seq(&[l, s])
        };
        check_agrees_with_naive(Arc::new(Program::new(vec![mk(), mk()])), Config::arm());
        check_agrees_with_naive(Arc::new(Program::new(vec![mk(), mk()])), Config::riscv());
    }

    #[test]
    fn agrees_on_ppoca() {
        // PPOCA (§2): forwarding a speculative-in-hardware write.
        let mut b = CodeBuilder::new();
        let s1 = b.store(Expr::val(0), Expr::val(37));
        let f = b.dmb_sy();
        let s2 = b.store(Expr::val(1), Expr::val(42));
        let t1 = b.finish_seq(&[s1, f, s2]);
        let mut b = CodeBuilder::new();
        let d = b.load(Reg(0), Expr::val(1));
        let i = b.store(Expr::val(2), Expr::val(51));
        let j = b.load(Reg(1), Expr::val(2));
        let fl = b.load(Reg(2), Expr::val(0).with_dep(Reg(1)));
        let body = b.seq(&[i, j, fl]);
        let br = b.if_then(Expr::reg(Reg(0)).eq(Expr::val(42)), body);
        let t2 = b.finish_seq(&[d, br]);
        let program = Arc::new(Program::new(vec![t1, t2]));
        let m = Machine::new(Arc::clone(&program), Config::arm());
        let exp = explore_promise_first(&m);
        // the PPOCA outcome r0=42 ∧ r1=51 ∧ r2=0 must be allowed
        assert!(
            exp.outcomes.iter().any(|o| o.reg(1, Reg(0)) == Val(42)
                && o.reg(1, Reg(1)) == Val(51)
                && o.reg(1, Reg(2)) == Val(0)),
            "PPOCA must be allowed"
        );
        check_agrees_with_naive(program, Config::arm());
    }

    #[test]
    fn final_memories_counted() {
        let mut b = CodeBuilder::new();
        let s = b.store(Expr::val(0), Expr::val(1));
        let t1 = b.finish_seq(&[s]);
        let m = Machine::new(Arc::new(Program::new(vec![t1])), Config::arm());
        let exp = explore_promise_first(&m);
        // exactly one final memory: [x := 1]
        assert_eq!(exp.stats.final_memories, 1);
        assert_eq!(exp.outcomes.len(), 1);
    }

    #[test]
    fn parallel_and_paranoid_agree_with_serial() {
        // LB shape with enough promise interleaving to exercise the pool.
        let mk = |from: i64, to: i64, reg| {
            let mut b = CodeBuilder::new();
            let l = b.load(reg, Expr::val(from));
            let s = b.store(Expr::val(to), Expr::val(1));
            b.finish_seq(&[l, s])
        };
        let program = Arc::new(Program::new(vec![mk(0, 1, Reg(1)), mk(1, 0, Reg(2))]));
        let serial = explore_promise_first(&Machine::new(Arc::clone(&program), Config::arm()));
        for config in [
            Config::arm().with_workers(4),
            Config::arm().with_paranoid(true),
            Config::arm().with_workers(2).with_paranoid(true),
        ] {
            let exp = explore_promise_first(&Machine::new(Arc::clone(&program), config));
            assert_eq!(exp.outcomes, serial.outcomes);
            assert_eq!(exp.stats.final_memories, serial.stats.final_memories);
        }
    }

    #[test]
    fn deadline_cut_phase2_results_are_not_memoised() {
        // Regression (PR 5 correctness sweep): the sampling scheduler
        // shares one phase-2 memo across all walks of a worker. A walk
        // cut off by the deadline mid-phase-2 must not leave truncated
        // per-thread outcome sets in the memo where a later walk would
        // consume them as complete.
        let mk = |from: i64, to: i64, reg| {
            let mut b = CodeBuilder::new();
            let l = b.load(reg, Expr::val(from));
            let s = b.store(Expr::val(to), Expr::val(1));
            b.finish_seq(&[l, s])
        };
        let program = Arc::new(Program::new(vec![mk(0, 1, Reg(1)), mk(1, 0, Reg(2))]));
        let m = Machine::new(program, Config::arm());
        let model = PromiseFirstModel::new(&m);

        let mut fresh_out = BTreeSet::new();
        let mut stats = crate::stats::Stats::default();
        let mut fresh_cache = model.walk_cache();
        model.outcome(&m, &mut fresh_cache, &mut stats, None, &mut fresh_out);

        let mut shared_cache = model.walk_cache();
        let mut cut_out = BTreeSet::new();
        let mut cut_stats = crate::stats::Stats::default();
        let past = Instant::now() - std::time::Duration::from_secs(1);
        model.outcome(
            &m,
            &mut shared_cache,
            &mut cut_stats,
            Some(past),
            &mut cut_out,
        );
        // whether or not the tiny phase-2 tree outran the periodic check,
        // a follow-up deadline-free query through the same memo must
        // reproduce the fresh result exactly
        let mut reuse_out = BTreeSet::new();
        let mut reuse_stats = crate::stats::Stats::default();
        model.outcome(
            &m,
            &mut shared_cache,
            &mut reuse_stats,
            None,
            &mut reuse_out,
        );
        assert!(!reuse_stats.truncated());
        assert_eq!(
            reuse_out, fresh_out,
            "deadline-truncated phase-2 entries leaked into a complete query"
        );
    }

    #[test]
    fn sampling_promise_walks_are_sound_and_deterministic() {
        // Sampled promise-first runs: every outcome found by a random
        // promise walk must be in the exhaustive set, and a fixed seed
        // reproduces exactly, including across worker counts.
        let mk = |from: i64, to: i64, reg| {
            let mut b = CodeBuilder::new();
            let l = b.load(reg, Expr::val(from));
            let s = b.store(Expr::val(to), Expr::val(1));
            b.finish_seq(&[l, s])
        };
        let program = Arc::new(Program::new(vec![mk(0, 1, Reg(1)), mk(1, 0, Reg(2))]));
        let m = Machine::new(Arc::clone(&program), Config::arm());
        let exhaustive = explore_promise_first(&m);
        let a = Engine::new(PromiseFirstModel::new(&m)).sample(16, 99);
        assert!(a.outcomes.is_subset(&exhaustive.outcomes));
        assert!(!a.outcomes.is_empty());
        let mp = Machine::new(program, Config::arm().with_workers(4));
        let b = Engine::new(PromiseFirstModel::new(&mp)).sample(16, 99);
        assert_eq!(a.outcomes, b.outcomes);
    }
}
