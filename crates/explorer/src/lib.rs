//! Exhaustive, sampled, and interactive exploration for
//! Promising-ARM/RISC-V (§7).
//!
//! Every search discipline is a [`SearchModel`] run by the one generic
//! [`Engine`] (see [`engine`]):
//!
//! * [`PromiseFirstModel`] / [`explore_promise_first`] — the paper's
//!   two-phase promise-first search (Theorem 7.1): enumerate final
//!   memories by interleaving only promises, then run every thread
//!   independently.
//! * [`NaiveModel`] / [`explore_naive`] — full interleaving search, the
//!   correctness reference for the promise-first optimisation.
//! * `FlatModel` (in `promising-flat`) — the Flat-lite baseline on the
//!   same engine.
//! * [`Engine::sample`] — seeded random-walk sampling over any of them:
//!   a sound under-approximation for state spaces where exhaustive
//!   search is out of reach.
//! * [`Session`] — rmem-style interactive stepping with undo and traces.
//!
//! ```
//! use promising_core::{parse_program, Config, Machine, Reg, Val};
//! use promising_explorer::explore;
//! use std::sync::Arc;
//!
//! let (program, _) = parse_program(
//!     "store(x, 1)\ndmb.sy\nstore(y, 1)\n---\nr1 = load(y)\nr2 = load(x)",
//! )?;
//! let machine = Machine::new(Arc::new(program), Config::arm());
//! let result = explore(&machine);
//! // the weak outcome r1 = 1 ∧ r2 = 0 is allowed without a reader-side barrier
//! assert!(result
//!     .outcomes
//!     .iter()
//!     .any(|o| o.reg(1, Reg(1)) == Val(1) && o.reg(1, Reg(2)) == Val(0)));
//! # Ok::<(), promising_core::ParseError>(())
//! ```

#![warn(missing_docs)]

pub mod engine;
pub mod frontier;
pub mod interactive;
pub mod naive;
pub mod promise_first;
pub mod stats;

pub use engine::{Engine, Exploration, SearchBudget, SearchModel, SplitMix64};
pub use frontier::{drive, effective_workers, panic_message, Ctx, ShardedVisited, WorkerReport};
pub use interactive::{Session, TraceEntry};
pub use naive::{explore_naive, explore_naive_budget, CertMode, NaiveModel};
pub use promise_first::{explore_promise_first, explore_promise_first_budget, PromiseFirstModel};
pub use promising_core::Outcome;
pub use stats::{Stats, StopReason};

use promising_core::Machine;

/// Explore a machine with the default (promise-first) strategy.
pub fn explore(machine: &Machine) -> Exploration {
    explore_promise_first(machine)
}
