//! Interactive exploration: step through model-allowed executions, inspect
//! thread states and memory, undo — the rmem-style debugging workflow of
//! §7/§8 as a library API (and a CLI in `examples/interactive_debug.rs`).

use promising_core::ids::TId;
use promising_core::{find_and_certify, Machine, StepEvent, Transition, TransitionKind};
use std::fmt::Write as _;

/// One recorded step of the session's trace.
#[derive(Clone, Debug)]
pub struct TraceEntry {
    /// The transition taken.
    pub transition: Transition,
    /// What it did.
    pub event: StepEvent,
}

/// An interactive stepping session over a [`Machine`].
///
/// Enabled transitions are the *machine steps* (certification-filtered), so
/// a user can never step into a state from which promises are
/// unfulfillable — exactly the paper's motivation (2) for preventing
/// inconsistent thread steps in §4.3.
#[derive(Clone, Debug)]
pub struct Session {
    machine: Machine,
    history: Vec<(Machine, TraceEntry)>,
}

impl Session {
    /// Start a session at the initial state of `machine`.
    pub fn new(machine: Machine) -> Session {
        Session {
            machine,
            history: Vec::new(),
        }
    }

    /// The current machine state.
    pub fn machine(&self) -> &Machine {
        &self.machine
    }

    /// The trace so far.
    pub fn trace(&self) -> impl Iterator<Item = &TraceEntry> {
        self.history.iter().map(|(_, e)| e)
    }

    /// Number of steps taken.
    pub fn depth(&self) -> usize {
        self.history.len()
    }

    /// The certified transitions available now.
    pub fn enabled(&self) -> Vec<Transition> {
        self.machine.machine_steps()
    }

    /// Take a transition, recording it in the trace.
    ///
    /// # Errors
    ///
    /// Returns the underlying [`promising_core::StepError`] if the
    /// transition is not enabled.
    pub fn step(&mut self, tr: &Transition) -> Result<StepEvent, promising_core::StepError> {
        let snapshot = self.machine.clone();
        let event = self.machine.apply(tr)?;
        self.history.push((
            snapshot,
            TraceEntry {
                transition: tr.clone(),
                event: event.clone(),
            },
        ));
        Ok(event)
    }

    /// Undo the last step. Returns `false` at the initial state.
    pub fn undo(&mut self) -> bool {
        match self.history.pop() {
            Some((snapshot, _)) => {
                self.machine = snapshot;
                true
            }
            None => false,
        }
    }

    /// Whether the current state is a valid final state.
    pub fn finished(&self) -> bool {
        self.machine.terminated()
    }

    /// Whether the state is a dead end: not finished, but no certified
    /// transition remains (an ARM store-exclusive deadlock, §4.3, or a
    /// loop-bound cut).
    pub fn dead_end(&self) -> bool {
        !self.finished() && self.enabled().is_empty()
    }

    /// A human-readable description of the current state: memory, then per
    /// thread the promise set, views and next statement.
    pub fn describe(&self) -> String {
        let mut s = String::new();
        let _ = writeln!(s, "memory: {}", self.machine.memory());
        for (i, t) in self.machine.threads().iter().enumerate() {
            let tid = TId(i);
            let next = match self.machine.head(tid) {
                Some((_, stmt)) => format!("{stmt:?}"),
                None => "done".to_string(),
            };
            let _ = writeln!(s, "{tid}: {} next: {next}", t.state);
        }
        s
    }

    /// A description of each enabled transition together with whether the
    /// acting thread currently has outstanding promises (handy for UIs).
    pub fn enabled_described(&self) -> Vec<(Transition, String)> {
        self.enabled()
            .into_iter()
            .map(|tr| {
                let desc = match &tr.kind {
                    TransitionKind::Read { t } => {
                        let m = self.machine.memory();
                        match m.get(*t) {
                            Some(msg) => {
                                format!("{}: read {} = {} (t={})", tr.tid, msg.loc, msg.val, t)
                            }
                            None => format!("{}: read initial value (t=0)", tr.tid),
                        }
                    }
                    TransitionKind::Promise { msg } => {
                        format!("{}: promise {} := {}", tr.tid, msg.loc, msg.val)
                    }
                    other => format!("{}: {other}", tr.tid),
                };
                (tr, desc)
            })
            .collect()
    }

    /// Convenience for tests/demos: is the promising thread `tid` certified?
    pub fn certified(&self, tid: TId) -> bool {
        find_and_certify(&self.machine, tid).certified
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use promising_core::{CodeBuilder, Config, Expr, Program, Reg, Timestamp, Val};
    use std::sync::Arc;

    fn mp_session() -> Session {
        let mut b = CodeBuilder::new();
        let s1 = b.store(Expr::val(0), Expr::val(37));
        let s2 = b.dmb_sy();
        let s3 = b.store(Expr::val(1), Expr::val(42));
        let t1 = b.finish_seq(&[s1, s2, s3]);
        let mut b = CodeBuilder::new();
        let l1 = b.load(Reg(1), Expr::val(1));
        let l2 = b.load(Reg(2), Expr::val(0));
        let t2 = b.finish_seq(&[l1, l2]);
        let m = Machine::new(Arc::new(Program::new(vec![t1, t2])), Config::arm());
        Session::new(m)
    }

    #[test]
    fn stepping_and_undo_round_trip() {
        let mut s = mp_session();
        let enabled = s.enabled();
        assert!(!enabled.is_empty());
        let tr = enabled
            .iter()
            .find(|t| t.tid == TId(0))
            .expect("writer can move")
            .clone();
        s.step(&tr).unwrap();
        assert_eq!(s.depth(), 1);
        assert!(s.undo());
        assert_eq!(s.depth(), 0);
        assert!(!s.undo());
    }

    #[test]
    fn full_mp_walkthrough_reaches_weak_outcome() {
        let mut s = mp_session();
        // writer: x := 37 (promise+fulfil via WriteNormal)
        s.step(&Transition::new(TId(0), TransitionKind::WriteNormal))
            .unwrap();
        s.step(&Transition::new(TId(0), TransitionKind::Internal))
            .unwrap();
        s.step(&Transition::new(TId(0), TransitionKind::WriteNormal))
            .unwrap();
        // reader: y = 42 then the stale x = 0
        s.step(&Transition::new(
            TId(1),
            TransitionKind::Read { t: Timestamp(2) },
        ))
        .unwrap();
        s.step(&Transition::new(
            TId(1),
            TransitionKind::Read { t: Timestamp::ZERO },
        ))
        .unwrap();
        assert!(s.finished());
        assert_eq!(s.machine().thread(TId(1)).state.regs.value(Reg(1)), Val(42));
        assert_eq!(s.machine().thread(TId(1)).state.regs.value(Reg(2)), Val(0));
        // trace remembers all five steps
        assert_eq!(s.depth(), 5);
    }

    #[test]
    fn describe_mentions_memory_and_threads() {
        let s = mp_session();
        let d = s.describe();
        assert!(d.contains("memory:"));
        assert!(d.contains("P0"));
        assert!(d.contains("P1"));
    }

    #[test]
    fn enabled_described_is_human_readable() {
        let s = mp_session();
        let descs = s.enabled_described();
        assert!(!descs.is_empty());
        assert!(descs.iter().all(|(_, d)| d.starts_with('P')));
    }
}
