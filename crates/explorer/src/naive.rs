//! Naive exhaustive exploration: interleave *all* transitions of all
//! threads (reads, writes, promises), deduplicating visited states.
//!
//! This is the reference strategy: sound and complete but with the full
//! interleaving blow-up. The promise-first strategy
//! ([`crate::promise_first`]) must produce identical outcome sets
//! (Theorem 7.1), which the cross-model tests check.

use promising_core::Outcome;
use crate::stats::Stats;
use promising_core::{
    find_and_certify, Machine, StateKey, Transition, TransitionKind,
};
use promising_core::ids::TId;
use std::collections::{BTreeSet, HashSet};
use std::time::Instant;

/// How the naive explorer uses certification (for the Theorem 6.2
/// experiment).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum CertMode {
    /// Filter every step of a promising thread through certification, as
    /// the machine-step rule does (r24).
    #[default]
    Online,
    /// Only use certification to enumerate promises; let non-promise steps
    /// run free and discard traces with unfulfilled promises at the end.
    /// Theorem 6.2 says the outcome set is unchanged.
    PromisesOnly,
}

/// Result of an exhaustive exploration.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Exploration {
    /// The set of observable outcomes of all complete executions.
    pub outcomes: BTreeSet<Outcome>,
    /// Search statistics.
    pub stats: Stats,
}

/// Exhaustively explore all interleavings from `machine`, returning every
/// outcome of a complete (terminated, promise-free) execution.
pub fn explore_naive(machine: &Machine, mode: CertMode) -> Exploration {
    explore_naive_deadline(machine, mode, None)
}

/// Like [`explore_naive`] with a wall-clock deadline (`stats.truncated`
/// set when hit).
pub fn explore_naive_deadline(
    machine: &Machine,
    mode: CertMode,
    deadline: Option<std::time::Duration>,
) -> Exploration {
    let start = Instant::now();
    let mut stats = Stats::default();
    let mut outcomes = BTreeSet::new();
    let mut visited: HashSet<StateKey> = HashSet::new();
    let mut stack: Vec<Machine> = Vec::new();

    let mut root = machine.clone();
    drain_internal(&mut root, &mut stats);
    if visited.insert(root.state_key()) {
        stack.push(root);
    }

    while let Some(m) = stack.pop() {
        stats.states += 1;
        if let Some(d) = deadline {
            if start.elapsed() > d {
                stats.truncated = true;
                break;
            }
        }
        if m.terminated() {
            outcomes.insert(Outcome::of_machine(&m));
            continue;
        }
        if m.any_stuck() {
            stats.bound_hits += 1;
            continue;
        }
        let transitions = enabled(&m, mode, &mut stats);
        if transitions.is_empty() {
            // unfinished but no steps: an unfulfillable-promise deadlock
            stats.deadlocks += 1;
            continue;
        }
        for tr in transitions {
            let mut next = m.clone();
            next.apply(&tr).expect("enabled transition applies");
            stats.transitions += 1;
            drain_internal(&mut next, &mut stats);
            if visited.insert(next.state_key()) {
                stack.push(next);
            }
        }
    }

    stats.duration = start.elapsed();
    Exploration { outcomes, stats }
}

/// Enumerate the transitions the naive search branches on.
fn enabled(m: &Machine, mode: CertMode, stats: &mut Stats) -> Vec<Transition> {
    let mut out = Vec::new();
    for tid in (0..m.num_threads()).map(TId) {
        match mode {
            CertMode::Online => {
                if m.thread(tid).state.has_promises() {
                    stats.certifications += 1;
                    let cert = find_and_certify(m, tid);
                    for k in cert.certified_first_steps {
                        out.push(Transition::new(tid, k));
                    }
                    for msg in cert.promisable {
                        out.push(Transition::new(tid, TransitionKind::Promise { msg }));
                    }
                } else {
                    for k in m.thread_steps(tid) {
                        out.push(Transition::new(tid, k));
                    }
                    stats.certifications += 1;
                    for msg in find_and_certify(m, tid).promisable {
                        out.push(Transition::new(tid, TransitionKind::Promise { msg }));
                    }
                }
            }
            CertMode::PromisesOnly => {
                for k in m.thread_steps(tid) {
                    out.push(Transition::new(tid, k));
                }
                stats.certifications += 1;
                for msg in find_and_certify(m, tid).promisable {
                    out.push(Transition::new(tid, TransitionKind::Promise { msg }));
                }
            }
        }
    }
    out
}

/// Eagerly run the deterministic `Internal` steps of every thread: they
/// commute with all other transitions and collapse the state space.
pub(crate) fn drain_internal(m: &mut Machine, stats: &mut Stats) {
    loop {
        let mut progressed = false;
        for tid in (0..m.num_threads()).map(TId) {
            loop {
                let steps = m.thread_steps(tid);
                if steps == [TransitionKind::Internal] {
                    m.apply(&Transition::new(tid, TransitionKind::Internal))
                        .expect("internal step applies");
                    stats.transitions += 1;
                    progressed = true;
                } else {
                    break;
                }
            }
        }
        if !progressed {
            break;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use promising_core::{CodeBuilder, Config, Expr, Program, Reg};
    use std::sync::Arc;

    fn mp_program(fence_reader: bool) -> Arc<Program> {
        let mut b = CodeBuilder::new();
        let s1 = b.store(Expr::val(0), Expr::val(37));
        let s2 = b.dmb_sy();
        let s3 = b.store(Expr::val(1), Expr::val(42));
        let t1 = b.finish_seq(&[s1, s2, s3]);
        let mut b = CodeBuilder::new();
        let mut stmts = Vec::new();
        stmts.push(b.load(Reg(1), Expr::val(1)));
        if fence_reader {
            stmts.push(b.dmb_sy());
        }
        stmts.push(b.load(Reg(2), Expr::val(0)));
        let t2 = b.finish_seq(&stmts);
        Arc::new(Program::new(vec![t1, t2]))
    }

    fn outcomes_of(program: Arc<Program>, mode: CertMode) -> BTreeSet<(i64, i64)> {
        let m = Machine::new(program, Config::arm());
        explore_naive(&m, mode)
            .outcomes
            .into_iter()
            .map(|o| (o.reg(1, Reg(1)).0, o.reg(1, Reg(2)).0))
            .collect()
    }

    #[test]
    fn mp_plain_allows_stale_read() {
        let set = outcomes_of(mp_program(false), CertMode::Online);
        assert!(set.contains(&(42, 0)), "weak MP outcome must be allowed");
        assert!(set.contains(&(42, 37)));
        assert!(set.contains(&(0, 0)));
        assert!(set.contains(&(0, 37)));
        assert_eq!(set.len(), 4);
    }

    #[test]
    fn mp_fenced_forbids_stale_read() {
        let set = outcomes_of(mp_program(true), CertMode::Online);
        assert!(!set.contains(&(42, 0)), "fenced MP must forbid 42/0");
        assert_eq!(set.len(), 3);
    }

    #[test]
    fn lb_cycle_requires_promises() {
        // LB+data on one side: r1=r2=42 allowed only via T2's promise.
        let mut b = CodeBuilder::new();
        let a = b.load(Reg(1), Expr::val(0));
        let s = b.store(Expr::val(1), Expr::reg(Reg(1)));
        let t1 = b.finish_seq(&[a, s]);
        let mut b = CodeBuilder::new();
        let c = b.load(Reg(2), Expr::val(1));
        let d = b.store(Expr::val(0), Expr::val(42));
        let t2 = b.finish_seq(&[c, d]);
        let m = Machine::new(Arc::new(Program::new(vec![t1, t2])), Config::arm());
        let exp = explore_naive(&m, CertMode::Online);
        let pairs: BTreeSet<(i64, i64)> = exp
            .outcomes
            .iter()
            .map(|o| (o.reg(0, Reg(1)).0, o.reg(1, Reg(2)).0))
            .collect();
        assert!(pairs.contains(&(42, 42)), "LB outcome requires promises");
        assert!(pairs.contains(&(0, 0)));
        // data dependency direction: r2 can never be 42 while r1 = 0
        // unless T2 read T1's y… enumerate everything and sanity-check
        // the coherence-impossible pair (42, 0) is possible? T1 reads 42
        // only from T2's promise; then y := 42; T2 may still read y = 0.
        assert!(pairs.contains(&(42, 0)));
    }

    #[test]
    fn cert_modes_agree_on_mp_and_lb() {
        for fenced in [false, true] {
            assert_eq!(
                outcomes_of(mp_program(fenced), CertMode::Online),
                outcomes_of(mp_program(fenced), CertMode::PromisesOnly),
            );
        }
    }

    #[test]
    fn sb_allows_both_stale_reads() {
        // SB: P0: store x 1; r1 = load y — P1: store y 1; r2 = load x.
        let mut b = CodeBuilder::new();
        let s = b.store(Expr::val(0), Expr::val(1));
        let l = b.load(Reg(1), Expr::val(1));
        let t1 = b.finish_seq(&[s, l]);
        let mut b = CodeBuilder::new();
        let s = b.store(Expr::val(1), Expr::val(1));
        let l = b.load(Reg(2), Expr::val(0));
        let t2 = b.finish_seq(&[s, l]);
        let m = Machine::new(Arc::new(Program::new(vec![t1, t2])), Config::arm());
        let exp = explore_naive(&m, CertMode::Online);
        let pairs: BTreeSet<(i64, i64)> = exp
            .outcomes
            .iter()
            .map(|o| (o.reg(0, Reg(1)).0, o.reg(1, Reg(2)).0))
            .collect();
        assert_eq!(
            pairs,
            BTreeSet::from([(0, 0), (0, 1), (1, 0), (1, 1)]),
            "all four SB outcomes allowed on ARM"
        );
    }

    #[test]
    fn coherence_corr_holds() {
        // CoRR: same-location reads must not see writes in opposite orders.
        let mut b = CodeBuilder::new();
        let s = b.store(Expr::val(0), Expr::val(1));
        let t1 = b.finish_seq(&[s]);
        let mut b = CodeBuilder::new();
        let l1 = b.load(Reg(1), Expr::val(0));
        let l2 = b.load(Reg(2), Expr::val(0));
        let t2 = b.finish_seq(&[l1, l2]);
        let m = Machine::new(Arc::new(Program::new(vec![t1, t2])), Config::arm());
        let exp = explore_naive(&m, CertMode::Online);
        let pairs: BTreeSet<(i64, i64)> = exp
            .outcomes
            .iter()
            .map(|o| (o.reg(1, Reg(1)).0, o.reg(1, Reg(2)).0))
            .collect();
        assert!(!pairs.contains(&(1, 0)), "coherence violation (1,0) forbidden");
        assert_eq!(pairs, BTreeSet::from([(0, 0), (0, 1), (1, 1)]));
    }
}
