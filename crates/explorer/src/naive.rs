//! Naive exhaustive exploration: interleave *all* transitions of all
//! threads (reads, writes, promises), deduplicating visited states.
//!
//! This is the reference strategy: sound and complete but with the full
//! interleaving blow-up. The promise-first strategy
//! ([`crate::promise_first`]) must produce identical outcome sets
//! (Theorem 7.1), which the cross-model tests check.
//!
//! The strategy is a [`SearchModel`] ([`NaiveModel`]) run by the generic
//! [`Engine`]: states are deduplicated by 128-bit fingerprint (exact keys
//! in paranoid mode), certification results are memoised across sibling
//! branches (the per-worker [`CertMemo`] cache), and `Config::workers >
//! 1` explores the frontier on that many threads with identical outcome
//! sets.

use crate::engine::{Engine, SearchBudget, SearchModel};
use crate::stats::{Stats, StopReason};
use promising_core::ids::TId;
use promising_core::Outcome;
use promising_core::{
    find_and_certify_with, find_promises_with, CertMemo, Config, Fingerprint, Footprint, Machine,
    MayAccess, StateKey, Transition, TransitionKind,
};
use std::collections::BTreeSet;
use std::time::Instant;

pub use crate::engine::Exploration;

/// How the naive explorer uses certification (for the Theorem 6.2
/// experiment).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum CertMode {
    /// Filter every step of a promising thread through certification, as
    /// the machine-step rule does (r24).
    #[default]
    Online,
    /// Only use certification to enumerate promises; let non-promise steps
    /// run free and discard traces with unfulfilled promises at the end.
    /// Theorem 6.2 says the outcome set is unchanged.
    PromisesOnly,
}

/// The naive full-interleaving strategy as a [`SearchModel`]: states are
/// whole [`Machine`]s, transitions are every certified step of every
/// thread, and outcomes are read off terminated machines.
pub struct NaiveModel {
    root: Machine,
    mode: CertMode,
}

impl NaiveModel {
    /// The naive strategy rooted at `machine`.
    pub fn new(machine: &Machine, mode: CertMode) -> NaiveModel {
        NaiveModel {
            root: machine.clone(),
            mode,
        }
    }
}

impl SearchModel for NaiveModel {
    type State = Machine;
    type Transition = Transition;
    type Exact = StateKey;
    type Out = Outcome;
    type Cache = CertMemo;

    fn config(&self) -> &Config {
        self.root.config()
    }

    fn root(&self, stats: &mut Stats) -> Machine {
        let mut root = self.root.clone();
        drain_internal(&mut root, stats);
        root
    }

    fn cache(&self) -> CertMemo {
        CertMemo::for_config(self.config())
    }

    fn fingerprint(&self, s: &Machine) -> Fingerprint {
        s.fingerprint()
    }

    fn exact_key(&self, s: &Machine) -> StateKey {
        s.state_key()
    }

    fn outcome(
        &self,
        s: &Machine,
        _cache: &mut CertMemo,
        _stats: &mut Stats,
        _deadline: Option<Instant>,
        out: &mut BTreeSet<Outcome>,
    ) {
        if s.terminated() {
            out.insert(Outcome::of_machine(s));
        }
    }

    fn is_final(&self, s: &Machine, stats: &mut Stats) -> bool {
        if s.terminated() {
            return true;
        }
        if s.any_stuck() {
            stats.bound_hits += 1;
            return true;
        }
        false
    }

    fn expand(
        &self,
        m: &Machine,
        memo: &mut CertMemo,
        stats: &mut Stats,
        deadline: Option<Instant>,
    ) -> Vec<Transition> {
        let mut out = Vec::new();
        for tid in (0..m.num_threads()).map(TId) {
            let promising = m.thread(tid).state.has_promises();
            stats.certifications += 1;
            if self.mode == CertMode::Online && promising {
                // r24: non-promise steps filtered to certified post-states.
                let cert = find_and_certify_with(m, tid, memo, deadline);
                if cert.deadline_hit {
                    stats.note_stop(StopReason::DeadlineExceeded);
                }
                for k in cert.certified_first_steps {
                    out.push(Transition::new(tid, k));
                }
                for msg in cert.promisable {
                    out.push(Transition::new(tid, TransitionKind::Promise { msg }));
                }
            } else {
                // Steps run free; certification only enumerates promises, so
                // skip the certified-first-steps re-expansion.
                let (promisable, cut) = find_promises_with(m, tid, memo, deadline);
                if cut {
                    stats.note_stop(StopReason::DeadlineExceeded);
                }
                for k in m.thread_steps(tid) {
                    out.push(Transition::new(tid, k));
                }
                for msg in promisable {
                    out.push(Transition::new(tid, TransitionKind::Promise { msg }));
                }
            }
        }
        out
    }

    fn apply(&self, s: &Machine, tr: &Transition, stats: &mut Stats) -> Machine {
        let mut next = s.clone();
        next.apply(tr).expect("enabled transition applies");
        stats.transitions += 1;
        drain_internal(&mut next, stats);
        next
    }

    fn footprint(&self, s: &Machine, t: &Transition) -> Footprint {
        s.transition_footprint(t)
    }

    fn reduce(&self, m: &Machine, transitions: &mut Vec<Transition>) {
        if self.config().dpor {
            reduce_delayable_threads(m, transitions);
        } else {
            reduce_pure_observers(m, transitions);
        }
    }

    fn drain_cache(&self, memo: &mut CertMemo, stats: &mut Stats) {
        let (hits, misses, survived) = memo.counters();
        stats.cert_hits += hits;
        stats.cert_misses += misses;
        stats.cert_survived += survived;
    }
}

/// Partial-order reduction for the full-interleaving search: collapse
/// co-enabled *pure observers*.
///
/// A thread is an eligible observer when it holds no promises, every
/// transition it currently has is a read (or exclusive-failure), and its
/// remaining code can never write a shared location
/// ([`Machine::thread_is_pure_observer`]). Every step such a thread will
/// *ever* take is thread-local: it never appends to memory, never
/// promises, and is certification-free, so it is independent — in both
/// directions — of every transition any other thread will ever take
/// (appends land above the observer's frozen read bound, so its specific
/// read candidates stay enabled with unchanged effects; its own steps
/// touch nothing others can see).
///
/// Keeping just ONE observer's transitions (plus everything else) is
/// therefore a *persistent set*: any trace avoiding the kept set consists
/// of other observers' reads, each independent of the whole kept set, so
/// every reachable terminated state is still reached by running the kept
/// thread first and the delayed observers later. Outcomes are read only
/// off terminated states, hence POR-on and POR-off outcome sets are
/// identical (asserted across the catalogue, the generated suites, and
/// the language corpus by `tests/por_agreement.rs`).
///
/// Why nothing stronger: transitions that append — normal writes, RMW
/// writes, promises — order themselves in memory's total order, so no two
/// of them commute; and a thread whose *remaining* code may still write
/// cannot be delayed past an append (its later reads could observe it),
/// nor collapsed while promisable (hoisted writes are exactly what the
/// promise transitions in the kept set represent). The interleaving-bound
/// lock workloads (threads writing a contended location until they
/// retire) therefore reduce only in their read-only phases; read-parallel
/// shapes (IRIW-style multi-observer tests, which dominate the litmus
/// corpora) collapse multiplicatively.
pub(crate) fn reduce_pure_observers(m: &Machine, transitions: &mut Vec<Transition>) {
    let n = m.num_threads();
    let mut prunable = vec![false; n];
    let mut seen = vec![false; n];
    for t in transitions.iter() {
        let tid = t.tid.0;
        let read_like = matches!(
            t.kind,
            TransitionKind::Read { .. } | TransitionKind::ExclFail
        );
        if !seen[tid] {
            seen[tid] = true;
            prunable[tid] = read_like
                && !m.thread(t.tid).state.has_promises()
                && m.thread_is_pure_observer(t.tid);
        } else {
            prunable[tid] &= read_like;
        }
    }
    let mut observers = (0..n).filter(|&t| prunable[t]);
    let Some(keep) = observers.next() else {
        return;
    };
    if observers.next().is_none() {
        // a single observer has nothing to collapse against
        return;
    }
    transitions.retain(|t| !prunable[t.tid.0] || t.tid.0 == keep);
}

/// Per-state persistent sets over the per-location conflict structure
/// (the [`promising_core::Config::dpor`] layer): collapse co-enabled
/// *delayable* threads, where delayable generalises PR 5's pure
/// observers with a second, per-location case.
///
/// A thread `q` (holding no promises) is *delayable* when either
///
/// 1. it is a pure observer with only read-like transitions enabled —
///    exactly [`reduce_pure_observers`]'s condition, kept verbatim so
///    the dynamic layer never reduces less than the static one; or
///
/// 2. its future accesses are *private*: `may_writes(q)` (the locations
///    q's remaining code may still write, [`Machine::thread_may_writes`])
///    is disjoint from every other thread's future reads and writes, and
///    `may_reads(q)` is disjoint from every other thread's future
///    writes.
///
/// Case 2 is where per-location footprints earn their keep: a thread
/// that appends — which PR 5 could never delay, because appends
/// order themselves in memory's single total order — can be delayed
/// when nobody will ever observe its locations. Delaying it is *not*
/// state-identical commutation: running the kept thread first and `q`
/// later produces a memory whose messages sit at different absolute
/// timestamps than in the avoided interleaving. It is outcome-preserving
/// by a renumbering argument: the two executions are related by the
/// order-isomorphism φ on timestamps that matches messages per location
/// in stream order. φ respects every rule the machine evaluates —
/// per-location coherence compares only same-location timestamps, view
/// joins are monotone under φ, and certification of either side reads
/// only locations the conditions keep disjoint from the other — so each
/// avoided trace has a kept-first counterpart reaching a terminated
/// state with the same register files and the same per-location final
/// values, which is all an [`Outcome`] records.
///
/// Keeping the lowest delayable thread (plus every non-delayable
/// thread's transitions) is a pure function of the state — the decision
/// reads only `transitions` and the static may-access sets of the
/// remaining code — so fingerprint deduplication stays sound: any two
/// states with equal fingerprints prune identically. (Sleep-set-style
/// history-dependent pruning would not survive dedup; see
/// docs/architecture.md.)
///
/// `tests/dpor_agreement.rs` asserts dpor-on ≡ dpor-off outcome sets
/// across the catalogue, the generated RMW suites, and the language
/// corpus, and an anti-rot test checks case 2 actually fires on a
/// disjoint-writer workload.
pub(crate) fn reduce_delayable_threads(m: &Machine, transitions: &mut Vec<Transition>) {
    let n = m.num_threads();
    let mut seen = vec![false; n];
    let mut all_read_like = vec![true; n];
    for t in transitions.iter() {
        let tid = t.tid.0;
        seen[tid] = true;
        all_read_like[tid] &= matches!(
            t.kind,
            TransitionKind::Read { .. } | TransitionKind::ExclFail
        );
    }
    let reads: Vec<MayAccess> = (0..n).map(|t| m.thread_may_reads(TId(t))).collect();
    let writes: Vec<MayAccess> = (0..n).map(|t| m.thread_may_writes(TId(t))).collect();
    let mut delayable = vec![false; n];
    for q in 0..n {
        if !seen[q] || m.thread(TId(q)).state.has_promises() {
            continue;
        }
        delayable[q] = (all_read_like[q] && m.thread_is_pure_observer(TId(q)))
            || (0..n).filter(|&r| r != q).all(|r| {
                !writes[q].intersects(&reads[r])
                    && !writes[q].intersects(&writes[r])
                    && !reads[q].intersects(&writes[r])
            });
    }
    let mut candidates = (0..n).filter(|&t| delayable[t]);
    let Some(keep) = candidates.next() else {
        return;
    };
    if candidates.next().is_none() {
        // a single delayable thread has nothing to collapse against
        return;
    }
    transitions.retain(|t| !delayable[t.tid.0] || t.tid.0 == keep);
}

/// Exhaustively explore all interleavings from `machine`, returning every
/// outcome of a complete (terminated, promise-free) execution.
pub fn explore_naive(machine: &Machine, mode: CertMode) -> Exploration {
    explore_naive_budget(machine, mode, SearchBudget::UNBOUNDED)
}

/// [`explore_naive`] under a [`SearchBudget`] (`stats.stop` records which
/// bound was hit). The wall-clock deadline also bounds certification
/// work *inside* `find_and_certify`, so a single pathological
/// certification cannot blow past the budget.
pub fn explore_naive_budget(
    machine: &Machine,
    mode: CertMode,
    budget: SearchBudget,
) -> Exploration {
    Engine::new(NaiveModel::new(machine, mode))
        .with_budget(budget)
        .run()
}

/// Eagerly run the deterministic `Internal` steps of every thread: they
/// commute with all other transitions and collapse the state space.
pub(crate) fn drain_internal(m: &mut Machine, stats: &mut Stats) {
    loop {
        let mut progressed = false;
        for tid in (0..m.num_threads()).map(TId) {
            while m.internal_only(tid) {
                m.apply(&Transition::new(tid, TransitionKind::Internal))
                    .expect("internal step applies");
                stats.transitions += 1;
                progressed = true;
            }
        }
        if !progressed {
            break;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use promising_core::{CodeBuilder, Config, Expr, Program, Reg};
    use std::sync::Arc;

    fn mp_program(fence_reader: bool) -> Arc<Program> {
        let mut b = CodeBuilder::new();
        let s1 = b.store(Expr::val(0), Expr::val(37));
        let s2 = b.dmb_sy();
        let s3 = b.store(Expr::val(1), Expr::val(42));
        let t1 = b.finish_seq(&[s1, s2, s3]);
        let mut b = CodeBuilder::new();
        let mut stmts = Vec::new();
        stmts.push(b.load(Reg(1), Expr::val(1)));
        if fence_reader {
            stmts.push(b.dmb_sy());
        }
        stmts.push(b.load(Reg(2), Expr::val(0)));
        let t2 = b.finish_seq(&stmts);
        Arc::new(Program::new(vec![t1, t2]))
    }

    fn outcomes_of(program: Arc<Program>, mode: CertMode) -> BTreeSet<(i64, i64)> {
        let m = Machine::new(program, Config::arm());
        explore_naive(&m, mode)
            .outcomes
            .into_iter()
            .map(|o| (o.reg(1, Reg(1)).0, o.reg(1, Reg(2)).0))
            .collect()
    }

    #[test]
    fn mp_plain_allows_stale_read() {
        let set = outcomes_of(mp_program(false), CertMode::Online);
        assert!(set.contains(&(42, 0)), "weak MP outcome must be allowed");
        assert!(set.contains(&(42, 37)));
        assert!(set.contains(&(0, 0)));
        assert!(set.contains(&(0, 37)));
        assert_eq!(set.len(), 4);
    }

    #[test]
    fn mp_fenced_forbids_stale_read() {
        let set = outcomes_of(mp_program(true), CertMode::Online);
        assert!(!set.contains(&(42, 0)), "fenced MP must forbid 42/0");
        assert_eq!(set.len(), 3);
    }

    #[test]
    fn lb_cycle_requires_promises() {
        // LB+data on one side: r1=r2=42 allowed only via T2's promise.
        let mut b = CodeBuilder::new();
        let a = b.load(Reg(1), Expr::val(0));
        let s = b.store(Expr::val(1), Expr::reg(Reg(1)));
        let t1 = b.finish_seq(&[a, s]);
        let mut b = CodeBuilder::new();
        let c = b.load(Reg(2), Expr::val(1));
        let d = b.store(Expr::val(0), Expr::val(42));
        let t2 = b.finish_seq(&[c, d]);
        let m = Machine::new(Arc::new(Program::new(vec![t1, t2])), Config::arm());
        let exp = explore_naive(&m, CertMode::Online);
        let pairs: BTreeSet<(i64, i64)> = exp
            .outcomes
            .iter()
            .map(|o| (o.reg(0, Reg(1)).0, o.reg(1, Reg(2)).0))
            .collect();
        assert!(pairs.contains(&(42, 42)), "LB outcome requires promises");
        assert!(pairs.contains(&(0, 0)));
        // data dependency direction: r2 can never be 42 while r1 = 0
        // unless T2 read T1's y… enumerate everything and sanity-check
        // the coherence-impossible pair (42, 0) is possible? T1 reads 42
        // only from T2's promise; then y := 42; T2 may still read y = 0.
        assert!(pairs.contains(&(42, 0)));
    }

    #[test]
    fn cert_modes_agree_on_mp_and_lb() {
        for fenced in [false, true] {
            assert_eq!(
                outcomes_of(mp_program(fenced), CertMode::Online),
                outcomes_of(mp_program(fenced), CertMode::PromisesOnly),
            );
        }
    }

    #[test]
    fn sb_allows_both_stale_reads() {
        // SB: P0: store x 1; r1 = load y — P1: store y 1; r2 = load x.
        let mut b = CodeBuilder::new();
        let s = b.store(Expr::val(0), Expr::val(1));
        let l = b.load(Reg(1), Expr::val(1));
        let t1 = b.finish_seq(&[s, l]);
        let mut b = CodeBuilder::new();
        let s = b.store(Expr::val(1), Expr::val(1));
        let l = b.load(Reg(2), Expr::val(0));
        let t2 = b.finish_seq(&[s, l]);
        let m = Machine::new(Arc::new(Program::new(vec![t1, t2])), Config::arm());
        let exp = explore_naive(&m, CertMode::Online);
        let pairs: BTreeSet<(i64, i64)> = exp
            .outcomes
            .iter()
            .map(|o| (o.reg(0, Reg(1)).0, o.reg(1, Reg(2)).0))
            .collect();
        assert_eq!(
            pairs,
            BTreeSet::from([(0, 0), (0, 1), (1, 0), (1, 1)]),
            "all four SB outcomes allowed on ARM"
        );
    }

    #[test]
    fn coherence_corr_holds() {
        // CoRR: same-location reads must not see writes in opposite orders.
        let mut b = CodeBuilder::new();
        let s = b.store(Expr::val(0), Expr::val(1));
        let t1 = b.finish_seq(&[s]);
        let mut b = CodeBuilder::new();
        let l1 = b.load(Reg(1), Expr::val(0));
        let l2 = b.load(Reg(2), Expr::val(0));
        let t2 = b.finish_seq(&[l1, l2]);
        let m = Machine::new(Arc::new(Program::new(vec![t1, t2])), Config::arm());
        let exp = explore_naive(&m, CertMode::Online);
        let pairs: BTreeSet<(i64, i64)> = exp
            .outcomes
            .iter()
            .map(|o| (o.reg(1, Reg(1)).0, o.reg(1, Reg(2)).0))
            .collect();
        assert!(
            !pairs.contains(&(1, 0)),
            "coherence violation (1,0) forbidden"
        );
        assert_eq!(pairs, BTreeSet::from([(0, 0), (0, 1), (1, 1)]));
    }

    #[test]
    fn parallel_workers_and_paranoid_mode_agree_with_serial() {
        for fenced in [false, true] {
            let program = mp_program(fenced);
            let serial = {
                let m = Machine::new(Arc::clone(&program), Config::arm());
                explore_naive(&m, CertMode::Online)
            };
            for config in [
                Config::arm().with_workers(4),
                Config::arm().with_paranoid(true),
                Config::arm().with_workers(2).with_paranoid(true),
            ] {
                let m = Machine::new(Arc::clone(&program), config);
                let exp = explore_naive(&m, CertMode::Online);
                assert_eq!(exp.outcomes, serial.outcomes);
            }
        }
    }

    #[test]
    fn sampling_agrees_with_exhaustive_on_small_tests() {
        // The full state space of MP is small enough that a handful of
        // walks usually covers several outcomes; all must be exhaustive
        // outcomes, and a fixed seed must reproduce exactly.
        let program = mp_program(false);
        let m = Machine::new(Arc::clone(&program), Config::arm());
        let exhaustive = explore_naive(&m, CertMode::Online);
        let a = Engine::new(NaiveModel::new(&m, CertMode::Online)).sample(24, 7);
        assert!(a.outcomes.is_subset(&exhaustive.outcomes));
        assert!(!a.outcomes.is_empty());
        let b = Engine::new(NaiveModel::new(&m, CertMode::Online)).sample(24, 7);
        assert_eq!(a.outcomes, b.outcomes);
        assert_eq!(a.stats.states, b.stats.states);
    }
}
