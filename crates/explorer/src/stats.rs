//! Exploration statistics, reported by every search strategy and consumed
//! by the benchmark tables.

use std::fmt;
use std::time::Duration;

/// Why a search stopped — the structured replacement for the old boolean
/// `truncated` flag. Every exploration ends with exactly one of these;
/// anything other than [`StopReason::Completed`] means the outcome set
/// is a lower bound (the paper's "ooT" cells).
///
/// The variants are ordered by *severity*: when per-worker results merge
/// ([`Stats::absorb`]) or a search trips several bounds, the most severe
/// reason wins, so a panic is never masked by a concurrent deadline and
/// a resource trip is never masked by a clean sibling worker.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub enum StopReason {
    /// The search ran to exhaustion: the outcome set is complete.
    #[default]
    Completed,
    /// The wall-clock deadline of the [`crate::SearchBudget`] fired
    /// (including inside certification / phase-2 sub-searches).
    DeadlineExceeded,
    /// The visited-state budget (`max_states`) was exhausted.
    StateBudget,
    /// The approximate memory budget (`max_bytes`) was exhausted: the
    /// resident visited-set + frontier estimate crossed the cap.
    MemoryBudget,
    /// The exploration panicked (a model bug); the search was cancelled
    /// and the panic payload captured by the caller's isolation layer.
    Panicked,
}

impl StopReason {
    /// Every variant, in severity order — drives the serialisation
    /// round-trip tests.
    pub const ALL: [StopReason; 5] = [
        StopReason::Completed,
        StopReason::DeadlineExceeded,
        StopReason::StateBudget,
        StopReason::MemoryBudget,
        StopReason::Panicked,
    ];

    /// Stable machine-readable name, used by the verdict database.
    pub fn name(self) -> &'static str {
        match self {
            StopReason::Completed => "completed",
            StopReason::DeadlineExceeded => "deadline",
            StopReason::StateBudget => "state-budget",
            StopReason::MemoryBudget => "memory-budget",
            StopReason::Panicked => "panicked",
        }
    }

    /// Parse a [`StopReason::name`] back (the verdict-database reader).
    pub fn parse(s: &str) -> Option<StopReason> {
        StopReason::ALL.into_iter().find(|r| r.name() == s)
    }

    /// Whether the search stopped early (any reason but `Completed`).
    pub fn truncated(self) -> bool {
        self != StopReason::Completed
    }
}

impl fmt::Display for StopReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Counters from one exploration (exhaustive or sampled).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct Stats {
    /// Distinct states visited (after deduplication). In sampling runs,
    /// total walk steps (walks do not deduplicate).
    pub states: u64,
    /// Transitions applied (including revisits).
    pub transitions: u64,
    /// `find_and_certify` invocations.
    pub certifications: u64,
    /// Number of final memories enumerated (promise-first only).
    pub final_memories: u64,
    /// Traces that hit the loop bound (incomplete, discarded).
    pub bound_hits: u64,
    /// States with unfulfilled promises and no enabled transition (the ARM
    /// store-exclusive deadlocks of §4.3).
    pub deadlocks: u64,
    /// Random-walk traces completed (sampling runs only).
    pub traces: u64,
    /// Transitions pruned by partial-order reduction
    /// ([`promising_core::Config::por`]): redundant interleavings the
    /// search proved it need not take.
    pub por_pruned: u64,
    /// Certification-memo lookups answered from the table
    /// ([`promising_core::CertMemo`]).
    pub cert_hits: u64,
    /// Certification-memo lookups that had to recompute.
    pub cert_misses: u64,
    /// Restricted-key memo hits served in a *different* full-memory
    /// context than the entry was computed in — certificates that
    /// survived sibling appends to out-of-scope locations (the
    /// incremental-recertification win; zero with `Config::dpor` off).
    pub cert_survived: u64,
    /// States obtained by stealing from a sibling worker's deque (the
    /// work-stealing frontier; zero on the serial path). A healthy
    /// parallel run steals rarely relative to `states` — local pops
    /// dominate — so this is the load-balance diagnostic, not a cost.
    pub steals: u64,
    /// Summed time workers spent expanding states (excludes time parked
    /// waiting for work), across all workers: total compute spent, not
    /// elapsed time. ≈ `wall_time` on a serial search; up to
    /// `workers × wall_time` on a saturated pool.
    pub cpu_time: Duration,
    /// Wall-clock time of the whole search, set once by the driver.
    /// [`Stats::absorb`] keeps the maximum rather than summing, so
    /// merging per-worker stats never inflates elapsed time.
    pub wall_time: Duration,
    /// Why the search stopped. [`StopReason::Completed`] unless a budget
    /// bound fired or the exploration panicked; anything else means the
    /// outcome set is a lower bound (the paper's "ooT" cells).
    pub stop: StopReason,
}

impl Stats {
    /// Whether the search was cut short (any [`StopReason`] but
    /// `Completed`) — the old boolean `truncated` flag.
    pub fn truncated(&self) -> bool {
        self.stop.truncated()
    }

    /// Record a stop reason, keeping the most severe one seen so far
    /// (severity is the [`StopReason`] ordering — a panic is never
    /// downgraded to a mere budget trip).
    pub fn note_stop(&mut self, reason: StopReason) {
        self.stop = self.stop.max(reason);
    }

    /// Merge counters from a sub-search: counters and `cpu_time` add up,
    /// `wall_time` takes the maximum (sub-searches overlap in time).
    pub fn absorb(&mut self, other: &Stats) {
        self.states += other.states;
        self.transitions += other.transitions;
        self.certifications += other.certifications;
        self.final_memories += other.final_memories;
        self.bound_hits += other.bound_hits;
        self.deadlocks += other.deadlocks;
        self.traces += other.traces;
        self.por_pruned += other.por_pruned;
        self.cert_hits += other.cert_hits;
        self.cert_misses += other.cert_misses;
        self.cert_survived += other.cert_survived;
        self.steals += other.steals;
        self.cpu_time += other.cpu_time;
        self.wall_time = self.wall_time.max(other.wall_time);
        self.stop = self.stop.max(other.stop);
    }
}

impl fmt::Display for Stats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} states, {} transitions, {} certifications, {} final memories, {} bound hits, {} deadlocks, {:.3}s wall ({:.3}s cpu)",
            self.states,
            self.transitions,
            self.certifications,
            self.final_memories,
            self.bound_hits,
            self.deadlocks,
            self.wall_time.as_secs_f64(),
            self.cpu_time.as_secs_f64()
        )?;
        if self.traces > 0 {
            write!(f, ", {} traces", self.traces)?;
        }
        if self.por_pruned > 0 {
            write!(f, ", {} POR-pruned", self.por_pruned)?;
        }
        if self.cert_hits > 0 || self.cert_misses > 0 {
            write!(
                f,
                ", cert-memo {}/{} hits ({} survived)",
                self.cert_hits,
                self.cert_hits + self.cert_misses,
                self.cert_survived
            )?;
        }
        if self.steals > 0 {
            write!(f, ", {} steals", self.steals)?;
        }
        if self.stop.truncated() {
            write!(f, ", stopped: {}", self.stop)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn absorb_adds_counters() {
        let mut a = Stats {
            states: 1,
            transitions: 2,
            ..Stats::default()
        };
        let b = Stats {
            states: 10,
            deadlocks: 1,
            cert_hits: 3,
            cert_misses: 2,
            cert_survived: 1,
            steals: 5,
            ..Stats::default()
        };
        a.absorb(&b);
        assert_eq!(a.states, 11);
        assert_eq!(a.transitions, 2);
        assert_eq!(a.deadlocks, 1);
        assert_eq!(a.steals, 5);
        a.absorb(&b);
        assert_eq!((a.cert_hits, a.cert_misses, a.cert_survived), (6, 4, 2));
        assert_eq!(a.steals, 10, "steal counts sum across workers");
    }

    #[test]
    fn absorb_sums_cpu_but_maxes_wall() {
        // The pre-split `duration` field summed per-worker wall clocks,
        // inflating reported elapsed time by ~workers×. The split keeps
        // the sum (cpu_time) and the true elapsed time (wall_time) apart.
        let mut a = Stats {
            cpu_time: Duration::from_secs(2),
            wall_time: Duration::from_secs(2),
            ..Stats::default()
        };
        let b = Stats {
            cpu_time: Duration::from_secs(3),
            wall_time: Duration::from_secs(1),
            ..Stats::default()
        };
        a.absorb(&b);
        assert_eq!(a.cpu_time, Duration::from_secs(5));
        assert_eq!(a.wall_time, Duration::from_secs(2));
    }

    #[test]
    fn absorb_keeps_most_severe_stop_reason() {
        let mut a = Stats {
            stop: StopReason::DeadlineExceeded,
            ..Stats::default()
        };
        a.absorb(&Stats::default());
        assert_eq!(a.stop, StopReason::DeadlineExceeded, "not masked by clean");
        a.absorb(&Stats {
            stop: StopReason::Panicked,
            ..Stats::default()
        });
        assert_eq!(a.stop, StopReason::Panicked);
        a.note_stop(StopReason::StateBudget);
        assert_eq!(a.stop, StopReason::Panicked, "never downgraded");
        assert!(a.truncated());
    }

    #[test]
    fn stop_reason_names_round_trip() {
        for r in StopReason::ALL {
            assert_eq!(StopReason::parse(r.name()), Some(r));
            assert_eq!(r.to_string(), r.name());
        }
        assert_eq!(StopReason::parse("bogus"), None);
        assert!(!StopReason::Completed.truncated());
        assert!(StopReason::MemoryBudget.truncated());
    }
}
