//! Exploration statistics, reported by every search strategy and consumed
//! by the benchmark tables.

use std::fmt;
use std::time::Duration;

/// Counters from one exploration (exhaustive or sampled).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct Stats {
    /// Distinct states visited (after deduplication). In sampling runs,
    /// total walk steps (walks do not deduplicate).
    pub states: u64,
    /// Transitions applied (including revisits).
    pub transitions: u64,
    /// `find_and_certify` invocations.
    pub certifications: u64,
    /// Number of final memories enumerated (promise-first only).
    pub final_memories: u64,
    /// Traces that hit the loop bound (incomplete, discarded).
    pub bound_hits: u64,
    /// States with unfulfilled promises and no enabled transition (the ARM
    /// store-exclusive deadlocks of §4.3).
    pub deadlocks: u64,
    /// Random-walk traces completed (sampling runs only).
    pub traces: u64,
    /// Transitions pruned by partial-order reduction
    /// ([`promising_core::Config::por`]): redundant interleavings the
    /// search proved it need not take.
    pub por_pruned: u64,
    /// Summed time workers spent expanding states (excludes time parked
    /// waiting for work), across all workers: total compute spent, not
    /// elapsed time. ≈ `wall_time` on a serial search; up to
    /// `workers × wall_time` on a saturated pool.
    pub cpu_time: Duration,
    /// Wall-clock time of the whole search, set once by the driver.
    /// [`Stats::absorb`] keeps the maximum rather than summing, so
    /// merging per-worker stats never inflates elapsed time.
    pub wall_time: Duration,
    /// Whether the search was cut short by a deadline or state budget
    /// (results are a lower bound, like the paper's "ooT" cells).
    pub truncated: bool,
}

impl Stats {
    /// Merge counters from a sub-search: counters and `cpu_time` add up,
    /// `wall_time` takes the maximum (sub-searches overlap in time).
    pub fn absorb(&mut self, other: &Stats) {
        self.states += other.states;
        self.transitions += other.transitions;
        self.certifications += other.certifications;
        self.final_memories += other.final_memories;
        self.bound_hits += other.bound_hits;
        self.deadlocks += other.deadlocks;
        self.traces += other.traces;
        self.por_pruned += other.por_pruned;
        self.cpu_time += other.cpu_time;
        self.wall_time = self.wall_time.max(other.wall_time);
        self.truncated |= other.truncated;
    }
}

impl fmt::Display for Stats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} states, {} transitions, {} certifications, {} final memories, {} bound hits, {} deadlocks, {:.3}s wall ({:.3}s cpu)",
            self.states,
            self.transitions,
            self.certifications,
            self.final_memories,
            self.bound_hits,
            self.deadlocks,
            self.wall_time.as_secs_f64(),
            self.cpu_time.as_secs_f64()
        )?;
        if self.traces > 0 {
            write!(f, ", {} traces", self.traces)?;
        }
        if self.por_pruned > 0 {
            write!(f, ", {} POR-pruned", self.por_pruned)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn absorb_adds_counters() {
        let mut a = Stats {
            states: 1,
            transitions: 2,
            ..Stats::default()
        };
        let b = Stats {
            states: 10,
            deadlocks: 1,
            ..Stats::default()
        };
        a.absorb(&b);
        assert_eq!(a.states, 11);
        assert_eq!(a.transitions, 2);
        assert_eq!(a.deadlocks, 1);
    }

    #[test]
    fn absorb_sums_cpu_but_maxes_wall() {
        // The pre-split `duration` field summed per-worker wall clocks,
        // inflating reported elapsed time by ~workers×. The split keeps
        // the sum (cpu_time) and the true elapsed time (wall_time) apart.
        let mut a = Stats {
            cpu_time: Duration::from_secs(2),
            wall_time: Duration::from_secs(2),
            ..Stats::default()
        };
        let b = Stats {
            cpu_time: Duration::from_secs(3),
            wall_time: Duration::from_secs(1),
            ..Stats::default()
        };
        a.absorb(&b);
        assert_eq!(a.cpu_time, Duration::from_secs(5));
        assert_eq!(a.wall_time, Duration::from_secs(2));
    }
}
