//! Exploration statistics, reported by every search strategy and consumed
//! by the benchmark tables.

use std::fmt;
use std::time::Duration;

/// Counters from one exhaustive exploration.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct Stats {
    /// Distinct states visited (after deduplication).
    pub states: u64,
    /// Transitions applied (including revisits).
    pub transitions: u64,
    /// `find_and_certify` invocations.
    pub certifications: u64,
    /// Number of final memories enumerated (promise-first only).
    pub final_memories: u64,
    /// Traces that hit the loop bound (incomplete, discarded).
    pub bound_hits: u64,
    /// States with unfulfilled promises and no enabled transition (the ARM
    /// store-exclusive deadlocks of §4.3).
    pub deadlocks: u64,
    /// Wall-clock time of the search.
    pub duration: Duration,
    /// Whether the search was cut short by a deadline (results are a
    /// lower bound, like the paper's "ooT" cells).
    pub truncated: bool,
}

impl Stats {
    /// Merge counters from a sub-search.
    pub fn absorb(&mut self, other: &Stats) {
        self.states += other.states;
        self.transitions += other.transitions;
        self.certifications += other.certifications;
        self.final_memories += other.final_memories;
        self.bound_hits += other.bound_hits;
        self.deadlocks += other.deadlocks;
        self.duration += other.duration;
        self.truncated |= other.truncated;
    }
}

impl fmt::Display for Stats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} states, {} transitions, {} certifications, {} final memories, {} bound hits, {} deadlocks, {:.3}s",
            self.states,
            self.transitions,
            self.certifications,
            self.final_memories,
            self.bound_hits,
            self.deadlocks,
            self.duration.as_secs_f64()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn absorb_adds_counters() {
        let mut a = Stats {
            states: 1,
            transitions: 2,
            ..Stats::default()
        };
        let b = Stats {
            states: 10,
            deadlocks: 1,
            ..Stats::default()
        };
        a.absorb(&b);
        assert_eq!(a.states, 11);
        assert_eq!(a.transitions, 2);
        assert_eq!(a.deadlocks, 1);
    }
}
