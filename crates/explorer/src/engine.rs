//! The generic search engine: one exploration loop for every strategy.
//!
//! Historically each search discipline (naive interleaving, promise-first,
//! Flat-lite) hand-rolled the same pop–expand–dedup–push cycle with its
//! own deadline checks, visited set, memo wiring, and result type. A
//! strategy is now a [`SearchModel`] — a state type, a fingerprint, an
//! expansion function, and an outcome extractor — and [`Engine`] owns
//! everything else:
//!
//! * the work frontier ([`crate::frontier::drive`]): serial LIFO stack or
//!   per-worker work-stealing deques for `Config::workers > 1`;
//! * the sharded visited set with 128-bit fingerprint dedup (probed in
//!   per-expansion batches) and the opt-in exact-key paranoid mode,
//!   whose exact keys are interned in per-shard bump arenas;
//! * per-worker caches (e.g. the naive strategy's shared [`CertMemo`]),
//!   built once per worker and never crossing threads;
//! * the [`SearchBudget`]: wall-clock deadline, global state budget, and
//!   approximate memory budget, reported via `stats.stop` (a structured
//!   [`StopReason`], `stats.truncated()` for the boolean view);
//! * [`Stats`] accounting, including the `cpu_time`/`wall_time` split.
//!
//! Two schedulers run on any model:
//!
//! * [`Engine::run`] — exhaustive search. The outcome set is complete and
//!   independent of worker count and pop order (the visited set only ever
//!   suppresses re-expansion).
//! * [`Engine::sample`] — seeded random-walk sampling for state spaces
//!   where exhaustive search is out of reach. Every walk follows real
//!   model transitions, so the sampled outcome set is always a **sound
//!   under-approximation** (a subset) of the exhaustive set; a fixed
//!   `(n_traces, seed)` pair is **deterministic** regardless of worker
//!   count, because each trace derives its own RNG from the seed and the
//!   trace index alone.
//!
//! [`CertMemo`]: promising_core::CertMemo

use crate::frontier::{drive, effective_workers, Ctx, ShardedVisited, WorkerReport};
use crate::stats::{Stats, StopReason};
use promising_core::{Config, Fingerprint, Footprint, FpHasher};
use std::collections::BTreeSet;
use std::fmt;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// Result of an exploration (exhaustive or sampled), generic over the
/// outcome type `O`. Every strategy in this workspace instantiates it
/// with [`promising_core::Outcome`]; the parameter exists so future
/// models can observe richer final states without forking the engine.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Exploration<O = promising_core::Outcome> {
    /// The set of observable outcomes of all complete executions found.
    pub outcomes: BTreeSet<O>,
    /// Search statistics.
    pub stats: Stats,
}

impl<O: Ord + fmt::Display> Exploration<O> {
    /// The outcome set as a canonical JSON array of strings: outcomes in
    /// their `Ord` order, rendered via `Display`. Byte-identical for any
    /// worker count and pop order (the `BTreeSet` is already canonically
    /// sorted) — the benchmark tables emit this so `--json` snapshots
    /// diff cleanly across runs.
    pub fn outcomes_json(&self) -> String {
        let mut out = String::from("[");
        for (i, o) in self.outcomes.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push('"');
            for c in o.to_string().chars() {
                match c {
                    '"' => out.push_str("\\\""),
                    '\\' => out.push_str("\\\\"),
                    c => out.push(c),
                }
            }
            out.push('"');
        }
        out.push(']');
        out
    }

    /// A 128-bit hex digest of the canonically sorted outcome set —
    /// a compact stand-in for [`Exploration::outcomes_json`] when the
    /// full set is too large to embed in a snapshot.
    pub fn outcomes_digest(&self) -> String {
        let mut h = FpHasher::new();
        h.write_len(self.outcomes.len());
        for o in &self.outcomes {
            let s = o.to_string();
            h.write_len(s.len());
            for b in s.bytes() {
                h.write_u32(b as u32);
            }
        }
        let fp = h.finish128();
        let mut out = String::new();
        let _ = write!(out, "{:032x}", fp.0);
        out
    }
}

/// Resource bounds for a search: a wall-clock deadline, a global
/// visited-state budget, and an approximate memory budget. Any bound,
/// when hit, records the corresponding [`StopReason`] on `stats.stop`
/// and stops all workers; the outcome set is then a lower bound (the
/// paper's "ooT" cells).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct SearchBudget {
    /// Stop once this much wall-clock time has elapsed
    /// ([`StopReason::DeadlineExceeded`]). The deadline also reaches
    /// *inside* certification and phase-2 searches via the model's
    /// `expand`/`outcome` hooks.
    pub deadline: Option<Duration>,
    /// Stop once this many states have been visited, summed across all
    /// workers (and across walk steps when sampling) —
    /// [`StopReason::StateBudget`].
    pub max_states: Option<u64>,
    /// Stop once the *approximate* resident bytes of the visited set and
    /// frontier cross this cap ([`StopReason::MemoryBudget`]): each
    /// retained state is charged its [`SearchModel::approx_state_bytes`]
    /// plus the visited-set entry overhead. The estimate is deliberately
    /// cheap (no heap walking), so big rows degrade gracefully instead
    /// of getting OOM-killed; it does not bound transient allocations
    /// inside a single expansion. Sampling runs retain only one walk
    /// state per worker and are never memory-bounded.
    pub max_bytes: Option<u64>,
}

impl SearchBudget {
    /// No bounds: run to exhaustion.
    pub const UNBOUNDED: SearchBudget = SearchBudget {
        deadline: None,
        max_states: None,
        max_bytes: None,
    };

    /// Budget with only a wall-clock deadline (`None` = unbounded).
    pub fn deadline(deadline: Option<Duration>) -> SearchBudget {
        SearchBudget {
            deadline,
            ..SearchBudget::UNBOUNDED
        }
    }

    /// Budget with only a state cap.
    pub fn max_states(max_states: u64) -> SearchBudget {
        SearchBudget {
            max_states: Some(max_states),
            ..SearchBudget::UNBOUNDED
        }
    }

    /// Budget with only an approximate memory cap.
    pub fn max_bytes(max_bytes: u64) -> SearchBudget {
        SearchBudget {
            max_bytes: Some(max_bytes),
            ..SearchBudget::UNBOUNDED
        }
    }

    /// Replace the deadline.
    pub fn with_deadline(mut self, deadline: Option<Duration>) -> SearchBudget {
        self.deadline = deadline;
        self
    }

    /// Replace the state cap.
    pub fn with_max_states(mut self, max_states: Option<u64>) -> SearchBudget {
        self.max_states = max_states;
        self
    }

    /// Replace the approximate memory cap.
    pub fn with_max_bytes(mut self, max_bytes: Option<u64>) -> SearchBudget {
        self.max_bytes = max_bytes;
        self
    }

    /// Scale every finite bound by `factor` (saturating) — the batch
    /// runner's escalating-retry ladder.
    #[must_use]
    pub fn scaled(self, factor: u32) -> SearchBudget {
        SearchBudget {
            deadline: self.deadline.map(|d| d.saturating_mul(factor)),
            max_states: self.max_states.map(|s| s.saturating_mul(factor as u64)),
            max_bytes: self.max_bytes.map(|b| b.saturating_mul(factor as u64)),
        }
    }
}

/// A search discipline over some transition system: what the generic
/// [`Engine`] needs to explore it.
///
/// The engine calls the hooks in a fixed order per popped state: budget
/// checks, [`outcome`](SearchModel::outcome) (every state — models whose
/// outcomes only exist at leaves check for themselves),
/// [`is_final`](SearchModel::is_final), then
/// [`expand`](SearchModel::expand) + [`apply`](SearchModel::apply) with
/// fingerprint dedup on each successor. A hook that records a stop
/// reason via [`Stats::note_stop`] (certification outran the deadline,
/// say) cancels the whole search immediately, so a truncated frontier is
/// never half-explored silently.
pub trait SearchModel: Sync {
    /// A node of the search graph (cheap to clone: COW machine state).
    type State: Clone + Send;
    /// One enabled step out of a state.
    type Transition;
    /// Exact state identity, stored beside fingerprints in paranoid mode
    /// to turn silent fingerprint collisions into loud panics (`Send`:
    /// the visited set holding the keys is shared across workers).
    type Exact: Eq + fmt::Debug + Send;
    /// An observable outcome of a complete execution.
    type Out: Ord + Send;
    /// Per-worker scratch shared across all states a worker expands
    /// (memo tables etc.). Built by [`cache`](SearchModel::cache) on the
    /// worker's own thread, so it may hold non-`Send` data.
    type Cache;

    /// Whether an interior (non-final) state with no enabled transition
    /// counts as a deadlock in `stats.deadlocks`. `false` for strategies
    /// where running out of transitions is the normal end of the search
    /// (promise-first: no more certifiable promises).
    const DEADLOCK_ON_EMPTY: bool = true;

    /// The machine configuration driving worker count and paranoid mode.
    fn config(&self) -> &Config;

    /// Build the root state (e.g. after draining deterministic internal
    /// steps, counted on `stats`).
    fn root(&self, stats: &mut Stats) -> Self::State;

    /// Build one per-worker cache for the exhaustive scheduler.
    fn cache(&self) -> Self::Cache;

    /// Build one per-worker cache for the sampling scheduler. Defaults
    /// to [`cache`](SearchModel::cache); override when sampling changes
    /// what is worth memoising — walks revisit states across traces
    /// (there is no visited set), so caches that could never hit twice
    /// under exhaustive dedup can pay for themselves here.
    fn walk_cache(&self) -> Self::Cache {
        self.cache()
    }

    /// 128-bit dedup fingerprint of a state.
    fn fingerprint(&self, s: &Self::State) -> Fingerprint;

    /// Exact dedup key of a state (only evaluated in paranoid mode).
    fn exact_key(&self, s: &Self::State) -> Self::Exact;

    /// Approximate resident size of a retained state, in bytes — feeds
    /// the [`SearchBudget::max_bytes`] accounting. The default is the
    /// shallow `size_of`; models whose states own heap data should add
    /// their dominant heap terms (an estimate is fine — the budget is
    /// a degradation trigger, not an allocator).
    fn approx_state_bytes(&self, _s: &Self::State) -> usize {
        std::mem::size_of::<Self::State>()
    }

    /// Record the outcomes observable at `s` (often none). May record
    /// a stop reason if internal work outran `deadline`.
    fn outcome(
        &self,
        s: &Self::State,
        cache: &mut Self::Cache,
        stats: &mut Stats,
        deadline: Option<Instant>,
        out: &mut BTreeSet<Self::Out>,
    );

    /// Whether `s` is a leaf (terminated or stuck — count `bound_hits`
    /// on `stats` as appropriate); leaves are not expanded.
    fn is_final(&self, s: &Self::State, stats: &mut Stats) -> bool;

    /// The transitions to branch on from `s`. May record a stop reason
    /// if enumeration (certification) outran `deadline`, in which case
    /// the returned set is discarded and the search stops.
    fn expand(
        &self,
        s: &Self::State,
        cache: &mut Self::Cache,
        stats: &mut Stats,
        deadline: Option<Instant>,
    ) -> Vec<Self::Transition>;

    /// Apply `t` to `s`, producing the successor state (counting applied
    /// transitions on `stats`).
    fn apply(&self, s: &Self::State, t: &Self::Transition, stats: &mut Stats) -> Self::State;

    /// The partial-order-reduction [`Footprint`] of `t` at `s`: acting
    /// agent, locations touched, append/certification flags. The default
    /// is [`Footprint::opaque`] — dependent with everything — so models
    /// that do not opt in are never reduced.
    fn footprint(&self, _s: &Self::State, _t: &Self::Transition) -> Footprint {
        Footprint::opaque()
    }

    /// Whether `a` and `b` are *independent* at `s`: wherever both are
    /// enabled they commute to the same state and neither enables or
    /// disables the other. The default derives the answer from the
    /// transitions' [`footprint`](SearchModel::footprint)s; `false`
    /// makes no claim (the relation is conservative).
    fn independent(&self, s: &Self::State, a: &Self::Transition, b: &Self::Transition) -> bool {
        self.footprint(s, a).independent_with(&self.footprint(s, b))
    }

    /// Partial-order reduction: shrink the expansion of `s` to a
    /// *persistent subset* of `transitions` — one whose exploration
    /// provably reaches every outcome the full set reaches. Called by
    /// both schedulers only when [`Config::por`] is set; the engine
    /// counts removed transitions in `stats.por_pruned`. The default
    /// keeps everything (sound for any model).
    fn reduce(&self, _s: &Self::State, _transitions: &mut Vec<Self::Transition>) {}

    /// Called once per worker when its search ends, before the worker's
    /// results are merged: fold any counters the per-worker cache
    /// accumulated (e.g. certification-memo hit rates) into its `Stats`.
    /// The default does nothing.
    fn drain_cache(&self, _cache: &mut Self::Cache, _stats: &mut Stats) {}
}

/// Assumed per-entry bookkeeping cost of a visited-set slot beyond the
/// stored key/value themselves (hash-table control bytes, load-factor
/// slack). Part of the deliberately-approximate memory accounting.
const VISITED_SLOT_OVERHEAD: usize = 16;

/// Per-worker accumulator used by both schedulers.
struct Local<M: SearchModel> {
    stats: Stats,
    outcomes: BTreeSet<M::Out>,
    cache: M::Cache,
    /// Reusable successor batch: one expansion's `(fingerprint, state)`
    /// pairs, probed against the visited set in a single
    /// [`ShardedVisited::insert_batch`] call.
    batch: Vec<(Fingerprint, M::State)>,
    /// Reusable newness flags for `batch` (same order).
    fresh: Vec<bool>,
}

/// The generic exploration engine: a [`SearchModel`] plus a
/// [`SearchBudget`]. See the module docs for what the engine owns.
pub struct Engine<M: SearchModel> {
    model: M,
    budget: SearchBudget,
}

impl<M: SearchModel> Engine<M> {
    /// An unbounded engine over `model`.
    pub fn new(model: M) -> Engine<M> {
        Engine {
            model,
            budget: SearchBudget::UNBOUNDED,
        }
    }

    /// Set the resource budget.
    pub fn with_budget(mut self, budget: SearchBudget) -> Engine<M> {
        self.budget = budget;
        self
    }

    /// The underlying model.
    pub fn model(&self) -> &M {
        &self.model
    }

    /// Exhaustively explore the model's state space. Complete (every
    /// reachable outcome is found) unless `stats.truncated()`; the
    /// outcome set is identical for every worker count and pop order.
    pub fn run(&self) -> Exploration<M::Out> {
        let start = Instant::now();
        let deadline_at = self.budget.deadline.map(|d| start + d);
        let max_states = self.budget.max_states.unwrap_or(u64::MAX);
        let max_bytes = self.budget.max_bytes.unwrap_or(u64::MAX);
        let total_states = AtomicU64::new(0);
        // Approximate resident bytes: every retained state is charged its
        // model-estimated size plus the visited-set entry (fingerprint,
        // optional exact key, hash-table slot overhead). Charged at
        // insertion and never released — retained states stay resident
        // for the whole search.
        let total_bytes = AtomicU64::new(0);
        let config = self.model.config();
        // A visited-set entry is a `(Fingerprint, u32)` map slot plus, in
        // paranoid mode, the exact key interned in the shard's arena.
        let entry_bytes = (std::mem::size_of::<Fingerprint>()
            + std::mem::size_of::<u32>()
            + VISITED_SLOT_OVERHEAD
            + if config.paranoid {
                std::mem::size_of::<M::Exact>()
            } else {
                0
            }) as u64;
        let workers = effective_workers(config.workers);
        let por = config.por;
        let visited: ShardedVisited<M::Exact> = ShardedVisited::new(config.paranoid, workers);
        let model = &self.model;

        let mut pre_stats = Stats::default();
        let root = model.root(&mut pre_stats);
        let mut roots = Vec::new();
        if visited.insert(model.fingerprint(&root), || model.exact_key(&root)) {
            total_bytes.fetch_add(
                model.approx_state_bytes(&root) as u64 + entry_bytes,
                Ordering::Relaxed,
            );
            roots.push(root);
        }

        let expand = |l: &mut Local<M>, s: M::State, ctx: &mut Ctx<'_, M::State>| {
            l.stats.states += 1;
            if total_states.fetch_add(1, Ordering::Relaxed) + 1 > max_states {
                l.stats.note_stop(StopReason::StateBudget);
                ctx.stop();
                return;
            }
            if total_bytes.load(Ordering::Relaxed) > max_bytes {
                l.stats.note_stop(StopReason::MemoryBudget);
                ctx.stop();
                return;
            }
            if let Some(at) = deadline_at {
                if Instant::now() >= at {
                    l.stats.note_stop(StopReason::DeadlineExceeded);
                    ctx.stop();
                    return;
                }
            }
            model.outcome(&s, &mut l.cache, &mut l.stats, deadline_at, &mut l.outcomes);
            if l.stats.truncated() {
                // internal work (phase-2 search) hit the deadline: the
                // outcome set is a lower bound from here on
                ctx.stop();
                return;
            }
            if model.is_final(&s, &mut l.stats) {
                return;
            }
            let mut transitions = model.expand(&s, &mut l.cache, &mut l.stats, deadline_at);
            if l.stats.truncated() {
                // a certification run was cut off: the step set may be
                // incomplete, so stop rather than explore a skewed frontier
                ctx.stop();
                return;
            }
            if transitions.is_empty() {
                if M::DEADLOCK_ON_EMPTY {
                    l.stats.deadlocks += 1;
                }
                return;
            }
            if por {
                let before = transitions.len();
                model.reduce(&s, &mut transitions);
                l.stats.por_pruned += (before - transitions.len()) as u64;
            }
            // Batch the successor dedup: fingerprint every successor
            // first, then probe the visited set once per touched shard
            // (one lock total on the serial layout) instead of once per
            // successor.
            l.batch.clear();
            for t in &transitions {
                let next = model.apply(&s, t, &mut l.stats);
                l.batch.push((model.fingerprint(&next), next));
            }
            visited.insert_batch(
                &l.batch,
                |it| it.0,
                |it| model.exact_key(&it.1),
                &mut l.fresh,
            );
            let mut added = 0u64;
            for ((_fp, next), is_new) in l.batch.drain(..).zip(l.fresh.iter().copied()) {
                if is_new {
                    added += model.approx_state_bytes(&next) as u64 + entry_bytes;
                    ctx.push(next);
                }
            }
            if added > 0 {
                total_bytes.fetch_add(added, Ordering::Relaxed);
            }
        };
        let step = Self::timed(expand);

        self.finish(
            start,
            pre_stats,
            drive(
                roots,
                workers,
                || self.local(false),
                step,
                Self::seal(model),
            ),
        )
    }

    /// Statistically explore the model's state space with `n_traces`
    /// seeded random walks. Each walk starts at the root and repeatedly
    /// applies one uniformly chosen enabled transition until the state is
    /// final or has no transitions, recording outcomes along the way.
    ///
    /// Guarantees (asserted by `tests/state_layer.rs` over the full
    /// litmus catalogue):
    ///
    /// * **sound under-approximation** — every sampled outcome is an
    ///   outcome of the exhaustive search (walks only take real enabled
    ///   transitions and extract outcomes exactly as `run` does);
    /// * **seeded determinism** — trace `i` draws from an RNG derived
    ///   only from `(seed, i)`, so as long as no budget bound fires the
    ///   result is a pure function of `(n_traces, seed)`, independent of
    ///   worker count and scheduling. A *truncated* run
    ///   (`stats.truncated()`) is still sound, but which walks were cut
    ///   off depends on timing and scheduling, so truncated results are
    ///   not reproducible — size `n_traces` to the budget instead.
    ///
    /// There is no visited set: walks are independent, and revisiting a
    /// state on different walks is expected. The budget still applies
    /// (`max_states` counts walk steps across all traces).
    pub fn sample(&self, n_traces: u64, seed: u64) -> Exploration<M::Out> {
        let start = Instant::now();
        let deadline_at = self.budget.deadline.map(|d| start + d);
        let max_states = self.budget.max_states.unwrap_or(u64::MAX);
        let total_states = AtomicU64::new(0);
        let config = self.model.config();
        let workers = effective_workers(config.workers);
        let por = config.por;
        let model = &self.model;

        // Work items are trace indices; each step runs one full walk.
        let roots: Vec<u64> = (0..n_traces).collect();

        let walk = |l: &mut Local<M>, trace: u64, ctx: &mut Ctx<'_, u64>| {
            let mut rng = SplitMix64::for_trace(seed, trace);
            let mut s = model.root(&mut l.stats);
            loop {
                l.stats.states += 1;
                if total_states.fetch_add(1, Ordering::Relaxed) + 1 > max_states {
                    l.stats.note_stop(StopReason::StateBudget);
                    ctx.stop();
                    return;
                }
                if let Some(at) = deadline_at {
                    if Instant::now() >= at {
                        l.stats.note_stop(StopReason::DeadlineExceeded);
                        ctx.stop();
                        return;
                    }
                }
                model.outcome(&s, &mut l.cache, &mut l.stats, deadline_at, &mut l.outcomes);
                if l.stats.truncated() {
                    ctx.stop();
                    return;
                }
                if model.is_final(&s, &mut l.stats) {
                    break;
                }
                let mut transitions = model.expand(&s, &mut l.cache, &mut l.stats, deadline_at);
                if l.stats.truncated() {
                    ctx.stop();
                    return;
                }
                if transitions.is_empty() {
                    if M::DEADLOCK_ON_EMPTY {
                        l.stats.deadlocks += 1;
                    }
                    break;
                }
                if por {
                    // walks draw from the reduced set: still a subset of
                    // the exhaustive outcomes, and `reduce` is a pure
                    // function of the state, so seeded determinism holds
                    let before = transitions.len();
                    model.reduce(&s, &mut transitions);
                    l.stats.por_pruned += (before - transitions.len()) as u64;
                }
                let t = &transitions[rng.below(transitions.len())];
                s = model.apply(&s, t, &mut l.stats);
            }
            l.stats.traces += 1;
        };
        let step = Self::timed(walk);

        self.finish(
            start,
            Stats::default(),
            drive(roots, workers, || self.local(true), step, Self::seal(model)),
        )
    }

    fn local(&self, walking: bool) -> Local<M> {
        Local {
            stats: Stats::default(),
            outcomes: BTreeSet::new(),
            cache: if walking {
                self.model.walk_cache()
            } else {
                self.model.cache()
            },
            batch: Vec::new(),
            fresh: Vec::new(),
        }
    }

    /// Wrap a step function so the time spent inside it accrues to the
    /// worker's `cpu_time`. Timing the step (rather than the worker's
    /// lifetime) excludes condvar-parked idle time, so summed `cpu_time`
    /// measures compute actually spent, not `workers × wall`.
    fn timed<S>(
        step: impl Fn(&mut Local<M>, S, &mut Ctx<'_, S>),
    ) -> impl Fn(&mut Local<M>, S, &mut Ctx<'_, S>) {
        move |l, s, ctx| {
            let begun = Instant::now();
            step(l, s, ctx);
            l.stats.cpu_time += begun.elapsed();
        }
    }

    /// Reduce a worker's accumulator to its `Send` result, draining any
    /// cache counters — and the driver's per-worker report (steal
    /// counts) — into the worker's stats first.
    fn seal(model: &M) -> impl Fn(Local<M>, WorkerReport) -> (Stats, BTreeSet<M::Out>) + Sync + '_ {
        |mut l, report| {
            model.drain_cache(&mut l.cache, &mut l.stats);
            l.stats.steals += report.steals;
            (l.stats, l.outcomes)
        }
    }

    fn finish(
        &self,
        start: Instant,
        pre_stats: Stats,
        results: Vec<(Stats, BTreeSet<M::Out>)>,
    ) -> Exploration<M::Out> {
        let mut stats = pre_stats;
        let mut outcomes = BTreeSet::new();
        for (s, o) in results {
            stats.absorb(&s);
            outcomes.extend(o);
        }
        stats.wall_time = start.elapsed();
        Exploration { outcomes, stats }
    }
}

/// Sebastiano Vigna's SplitMix64: a tiny, high-quality, seedable PRNG.
/// Used (instead of an external `rand` dependency) to drive the sampling
/// scheduler deterministically.
#[derive(Clone, Copy, Debug)]
pub struct SplitMix64(u64);

impl SplitMix64 {
    /// A generator seeded with `seed`.
    pub fn new(seed: u64) -> SplitMix64 {
        SplitMix64(seed)
    }

    /// The generator for trace `trace` of a sampling run seeded with
    /// `seed`: a pure function of both, so traces are reproducible
    /// independently of which worker runs them.
    pub fn for_trace(seed: u64, trace: u64) -> SplitMix64 {
        // Decorrelate the per-trace streams by mixing the trace index
        // through one SplitMix64 round before using it as an offset.
        let mut ix = SplitMix64(seed ^ trace.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        SplitMix64(ix.next_u64())
    }

    /// The next 64 uniformly distributed bits.
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// A uniformly-ish distributed index below `n` (modulo bias is
    /// negligible for the branching factors involved).
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn below(&mut self, n: usize) -> usize {
        assert!(n > 0, "cannot sample from an empty set");
        (self.next_u64() % n as u64) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A toy model: states are integers, transitions add 1 or 2, final at
    /// >= limit; the outcome is the exact value reached.
    struct CountUp {
        limit: u64,
        config: Config,
    }

    impl SearchModel for CountUp {
        type State = u64;
        type Transition = u64;
        type Exact = u64;
        type Out = u64;
        type Cache = ();

        fn config(&self) -> &Config {
            &self.config
        }
        fn root(&self, _stats: &mut Stats) -> u64 {
            0
        }
        fn cache(&self) {}
        fn fingerprint(&self, s: &u64) -> Fingerprint {
            let mut h = promising_core::FpHasher::new();
            h.write_u64(*s);
            h.finish128()
        }
        fn exact_key(&self, s: &u64) -> u64 {
            *s
        }
        fn outcome(
            &self,
            s: &u64,
            _cache: &mut (),
            _stats: &mut Stats,
            _deadline: Option<Instant>,
            out: &mut BTreeSet<u64>,
        ) {
            if *s >= self.limit {
                out.insert(*s);
            }
        }
        fn is_final(&self, s: &u64, _stats: &mut Stats) -> bool {
            *s >= self.limit
        }
        fn expand(
            &self,
            _s: &u64,
            _cache: &mut (),
            _stats: &mut Stats,
            _deadline: Option<Instant>,
        ) -> Vec<u64> {
            vec![1, 2]
        }
        fn apply(&self, s: &u64, t: &u64, stats: &mut Stats) -> u64 {
            stats.transitions += 1;
            s + t
        }
    }

    fn engine(limit: u64, workers: usize) -> Engine<CountUp> {
        Engine::new(CountUp {
            limit,
            config: Config::arm().with_workers(workers),
        })
    }

    #[test]
    fn run_is_exhaustive_and_worker_independent() {
        let serial = engine(10, 1).run();
        // +1/+2 walks can land exactly on 10 or overshoot to 11.
        assert_eq!(serial.outcomes, BTreeSet::from([10, 11]));
        assert_eq!(serial.stats.states, 12); // 0..=11 all reachable
        for workers in [2, 4] {
            let par = engine(10, workers).run();
            assert_eq!(par.outcomes, serial.outcomes);
            assert_eq!(par.stats.states, serial.stats.states);
        }
    }

    #[test]
    fn sample_is_subset_and_seed_deterministic() {
        let exhaustive = engine(10, 1).run();
        let a = engine(10, 1).sample(32, 0xC0FFEE);
        assert!(a.outcomes.is_subset(&exhaustive.outcomes));
        assert!(!a.outcomes.is_empty());
        assert_eq!(a.stats.traces, 32);
        // Same seed: identical result, any worker count.
        for workers in [1, 4] {
            let b = engine(10, workers).sample(32, 0xC0FFEE);
            assert_eq!(b.outcomes, a.outcomes);
            assert_eq!(b.stats.traces, a.stats.traces);
            assert_eq!(b.stats.states, a.stats.states);
        }
        // Different seed: almost surely a different walk mix, still valid.
        let c = engine(10, 1).sample(32, 1);
        assert!(c.outcomes.is_subset(&exhaustive.outcomes));
    }

    #[test]
    fn budget_truncates_run() {
        let exp = engine(1 << 20, 1)
            .with_budget(SearchBudget::max_states(100))
            .run();
        assert!(exp.stats.truncated());
        assert_eq!(exp.stats.stop, StopReason::StateBudget);
        assert!(exp.stats.states <= 101);

        let exp = engine(1 << 20, 1)
            .with_budget(SearchBudget::deadline(Some(Duration::ZERO)))
            .run();
        assert!(exp.stats.truncated());
        assert_eq!(exp.stats.stop, StopReason::DeadlineExceeded);
    }

    #[test]
    fn memory_budget_truncates_run() {
        // Each CountUp state is charged size_of::<u64>() + entry
        // overhead, so a 2 KiB cap trips after a few dozen states where
        // the unbounded search would visit ~2^20.
        let exp = engine(1 << 20, 1)
            .with_budget(SearchBudget::max_bytes(2048))
            .run();
        assert!(exp.stats.truncated());
        assert_eq!(exp.stats.stop, StopReason::MemoryBudget);
        assert!(exp.stats.states < 1000);
        // A generous cap never fires.
        let exp = engine(10, 1)
            .with_budget(SearchBudget::max_bytes(1 << 20))
            .run();
        assert_eq!(exp.stats.stop, StopReason::Completed);
        assert_eq!(exp.outcomes, BTreeSet::from([10, 11]));
    }

    #[test]
    fn budget_truncates_sample() {
        let exp = engine(1 << 20, 1)
            .with_budget(SearchBudget::max_states(50))
            .sample(1000, 7);
        assert!(exp.stats.truncated());
        assert_eq!(exp.stats.stop, StopReason::StateBudget);
        assert!(exp.stats.traces < 1000);
    }

    #[test]
    fn scaled_budget_multiplies_every_bound() {
        let b = SearchBudget {
            deadline: Some(Duration::from_secs(2)),
            max_states: Some(100),
            max_bytes: Some(1000),
        }
        .scaled(4);
        assert_eq!(b.deadline, Some(Duration::from_secs(8)));
        assert_eq!(b.max_states, Some(400));
        assert_eq!(b.max_bytes, Some(4000));
        assert_eq!(SearchBudget::UNBOUNDED.scaled(8), SearchBudget::UNBOUNDED);
    }

    /// A wrapper model that panics while expanding the state whose value
    /// equals the trigger — the panic-injection probe used to validate
    /// panic isolation end to end (a buggy model must yield a captured
    /// payload, not a dead process or a hung pool).
    struct PanicOn {
        inner: CountUp,
        trigger: u64,
    }

    impl SearchModel for PanicOn {
        type State = u64;
        type Transition = u64;
        type Exact = u64;
        type Out = u64;
        type Cache = ();

        fn config(&self) -> &Config {
            self.inner.config()
        }
        fn root(&self, stats: &mut Stats) -> u64 {
            self.inner.root(stats)
        }
        fn cache(&self) {}
        fn fingerprint(&self, s: &u64) -> Fingerprint {
            self.inner.fingerprint(s)
        }
        fn exact_key(&self, s: &u64) -> u64 {
            *s
        }
        fn outcome(
            &self,
            s: &u64,
            cache: &mut (),
            stats: &mut Stats,
            deadline: Option<Instant>,
            out: &mut BTreeSet<u64>,
        ) {
            self.inner.outcome(s, cache, stats, deadline, out);
        }
        fn is_final(&self, s: &u64, stats: &mut Stats) -> bool {
            self.inner.is_final(s, stats)
        }
        fn expand(
            &self,
            s: &u64,
            cache: &mut (),
            stats: &mut Stats,
            deadline: Option<Instant>,
        ) -> Vec<u64> {
            assert!(*s != self.trigger, "injected model bug at state {s}");
            self.inner.expand(s, cache, stats, deadline)
        }
        fn apply(&self, s: &u64, t: &u64, stats: &mut Stats) -> u64 {
            self.inner.apply(s, t, stats)
        }
    }

    #[test]
    fn model_panic_is_catchable_with_payload_serial_and_parallel() {
        for workers in [1, 4] {
            let eng = Engine::new(PanicOn {
                inner: CountUp {
                    limit: 64,
                    config: Config::arm().with_workers(workers),
                },
                trigger: 7,
            });
            let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| eng.run()))
                .expect_err("trigger state is reachable; the run must panic");
            let msg = crate::frontier::panic_message(err.as_ref());
            assert!(
                msg.contains("injected model bug at state 7"),
                "payload lost: {msg} (workers={workers})"
            );
        }
    }

    /// A wrapper model whose root expansion stalls for a fixed time —
    /// with several workers, the siblings spend that window parked or
    /// steal-polling, which must NOT accrue to `cpu_time`.
    struct SlowRoot {
        inner: CountUp,
        stall: Duration,
    }

    impl SearchModel for SlowRoot {
        type State = u64;
        type Transition = u64;
        type Exact = u64;
        type Out = u64;
        type Cache = ();

        fn config(&self) -> &Config {
            self.inner.config()
        }
        fn root(&self, stats: &mut Stats) -> u64 {
            self.inner.root(stats)
        }
        fn cache(&self) {}
        fn fingerprint(&self, s: &u64) -> Fingerprint {
            self.inner.fingerprint(s)
        }
        fn exact_key(&self, s: &u64) -> u64 {
            *s
        }
        fn outcome(
            &self,
            s: &u64,
            cache: &mut (),
            stats: &mut Stats,
            deadline: Option<Instant>,
            out: &mut BTreeSet<u64>,
        ) {
            self.inner.outcome(s, cache, stats, deadline, out);
        }
        fn is_final(&self, s: &u64, stats: &mut Stats) -> bool {
            self.inner.is_final(s, stats)
        }
        fn expand(
            &self,
            s: &u64,
            cache: &mut (),
            stats: &mut Stats,
            deadline: Option<Instant>,
        ) -> Vec<u64> {
            if *s == 0 {
                std::thread::sleep(self.stall);
            }
            self.inner.expand(s, cache, stats, deadline)
        }
        fn apply(&self, s: &u64, t: &u64, stats: &mut Stats) -> u64 {
            self.inner.apply(s, t, stats)
        }
    }

    #[test]
    fn parked_workers_do_not_accrue_cpu_under_stealing() {
        // One worker stalls 40ms inside the root expansion while its 3
        // siblings have nothing to pop or steal. If park/steal-backoff
        // time leaked into `cpu_time`, the merged figure would approach
        // workers × wall (≥160ms); timing the step alone keeps it near
        // the single stall. Guards the workers× inflation artifact.
        let stall = Duration::from_millis(40);
        let exp = Engine::new(SlowRoot {
            inner: CountUp {
                limit: 6,
                config: Config::arm().with_workers(4),
            },
            stall,
        })
        .run();
        assert_eq!(exp.outcomes, BTreeSet::from([6, 7]));
        assert!(exp.stats.wall_time >= stall, "{:?}", exp.stats.wall_time);
        assert!(
            exp.stats.cpu_time < 3 * stall,
            "parked siblings accrued cpu: {:?} (wall {:?})",
            exp.stats.cpu_time,
            exp.stats.wall_time
        );
        // absorb() itself maxes wall and sums cpu — unit-covered in
        // stats.rs; here the end-to-end merged numbers stay sane too.
        assert!(exp.stats.cpu_time >= stall - Duration::from_millis(5));
    }

    #[test]
    fn splitmix_streams_are_stable() {
        // Pin the generator so seeded sampling runs stay reproducible
        // across refactors (changing the stream silently changes every
        // recorded sampling result).
        let mut r = SplitMix64::new(0);
        assert_eq!(r.next_u64(), 0xE220_A839_7B1D_CDAF);
        let mut a = SplitMix64::for_trace(42, 0);
        let mut b = SplitMix64::for_trace(42, 1);
        assert_ne!(a.next_u64(), b.next_u64());
    }
}
