//! The shared exploration frontier: a work pool of unexplored states, a
//! sharded visited set, and a driver that runs the search serially or on
//! scoped worker threads.
//!
//! Every exhaustive strategy in this workspace (naive, promise-first, and
//! Flat-lite's interleaving search) is the same loop: pop a state, expand
//! it, deduplicate successors against a visited set, push the fresh ones.
//! [`drive`] owns that loop; a strategy supplies three closures:
//!
//! * `init` — build the per-worker accumulator (stats, outcomes, memo
//!   tables; may contain non-`Send` data such as `Rc`, since it never
//!   leaves its worker thread);
//! * `step` — expand one state, pushing successors via [`Ctx::push`] and
//!   signalling global cancellation via [`Ctx::stop`] (deadlines);
//! * `finish` — reduce the accumulator to a `Send` result, merged by the
//!   caller (e.g. via `Stats::absorb`).
//!
//! With `workers == 1` the driver runs a plain LIFO stack with no
//! synchronisation — the serial path pays nothing for the abstraction.
//! With more workers it runs a mutex-guarded shared stack with condvar
//! parking and counts in-flight expansions for termination detection:
//! the search is done when the pool is empty *and* no worker is mid-step.
//! States are coarse-grained units (each expansion runs certification),
//! so a single shared stack does not contend in practice.
//!
//! Order independence: expanding a state depends only on that state, and
//! the visited set only ever *suppresses* re-expansion of an
//! already-seen state, so the set of expanded states — and therefore the
//! outcome set — is identical for any pop order and worker count.

use promising_core::{Fingerprint, FpBuildHasher};
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Condvar, Mutex};

/// A visited set keyed by 128-bit state fingerprints, striped over
/// independently locked shards so parallel workers rarely contend.
///
/// In paranoid mode ([`promising_core::Config::paranoid`]) each entry
/// additionally stores the exact state key `K`; inserting a *different*
/// state with the same fingerprint panics, turning a silent dedup error
/// into a loud test failure.
pub struct ShardedVisited<K> {
    shards: Vec<Mutex<HashMap<Fingerprint, Option<K>, FpBuildHasher>>>,
    paranoid: bool,
    /// `shards.len() - 1`; shard count is a power of two.
    mask: u64,
}

impl<K: Eq + std::fmt::Debug> ShardedVisited<K> {
    /// A visited set sized for `workers` parallel writers.
    pub fn new(paranoid: bool, workers: usize) -> ShardedVisited<K> {
        let shards = if workers <= 1 {
            1
        } else {
            (workers * 8).next_power_of_two().min(256)
        };
        ShardedVisited {
            shards: (0..shards)
                .map(|_| Mutex::new(HashMap::default()))
                .collect(),
            paranoid,
            mask: shards as u64 - 1,
        }
    }

    /// Insert a state, returning `true` if it was new. `exact` is only
    /// evaluated in paranoid mode.
    ///
    /// # Panics
    ///
    /// In paranoid mode, panics if `fp` is already present with a
    /// *different* exact key — a fingerprint collision.
    pub fn insert(&self, fp: Fingerprint, exact: impl FnOnce() -> K) -> bool {
        // The fingerprint is uniform; any bit range selects a shard. Use
        // high bits — the identity hasher folds low bits into the bucket
        // index within the shard.
        let shard = ((fp.0 >> 64) as u64 >> 32) & self.mask;
        let mut guard = self.shards[shard as usize].lock().expect("shard poisoned");
        match guard.entry(fp) {
            std::collections::hash_map::Entry::Occupied(e) => {
                if self.paranoid {
                    let stored = e.get();
                    let fresh = exact();
                    assert!(
                        stored.as_ref() == Some(&fresh),
                        "state fingerprint collision at {fp}:\n  stored: {stored:?}\n  fresh:  {fresh:?}"
                    );
                }
                false
            }
            std::collections::hash_map::Entry::Vacant(v) => {
                v.insert(self.paranoid.then(exact));
                true
            }
        }
    }

    /// Number of distinct states recorded.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().expect("shard poisoned").len())
            .sum()
    }

    /// Whether no state has been recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Per-step context: successor buffer and the global cancellation flag.
pub struct Ctx<'a, S> {
    out: Vec<S>,
    stop: &'a AtomicBool,
}

impl<S> Ctx<'_, S> {
    /// Schedule a successor state for expansion.
    pub fn push(&mut self, s: S) {
        self.out.push(s);
    }

    /// Cancel the whole search (deadline hit); workers drain and exit.
    pub fn stop(&self) {
        self.stop.store(true, Ordering::Relaxed);
    }

    /// Whether cancellation was requested.
    pub fn stopped(&self) -> bool {
        self.stop.load(Ordering::Relaxed)
    }
}

struct Pool<S> {
    state: Mutex<PoolState<S>>,
    ready: Condvar,
}

struct PoolState<S> {
    stack: Vec<S>,
    /// Workers currently inside `step` (they may still push successors).
    in_flight: usize,
}

/// Unwind guard around a `step` call: if the step panics, the worker
/// would otherwise leave `in_flight` incremented forever and deadlock
/// its parked siblings. The guard's `Drop` (reached only on unwind — the
/// normal path defuses it with `mem::forget`) decrements the counter,
/// raises the stop flag, and wakes everyone so the panic propagates out
/// of `thread::scope` instead of hanging the process.
struct AbortOnPanic<'a, S> {
    pool: &'a Pool<S>,
    stop: &'a AtomicBool,
}

impl<S> Drop for AbortOnPanic<'_, S> {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        let mut g = self
            .pool
            .state
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        g.in_flight -= 1;
        drop(g);
        self.pool.ready.notify_all();
    }
}

/// Run the exploration loop over `roots`.
///
/// Returns one `finish` result per worker (a single-element vector on the
/// serial path). See the module docs for the closure contract.
pub fn drive<S, L, R>(
    roots: Vec<S>,
    workers: usize,
    init: impl Fn() -> L + Sync,
    step: impl Fn(&mut L, S, &mut Ctx<'_, S>) + Sync,
    finish: impl Fn(L) -> R + Sync,
) -> Vec<R>
where
    S: Send,
    R: Send,
{
    let stop = AtomicBool::new(false);

    if workers <= 1 {
        let mut local = init();
        let mut stack = roots;
        let mut ctx = Ctx {
            out: Vec::new(),
            stop: &stop,
        };
        while let Some(s) = stack.pop() {
            if ctx.stopped() {
                break;
            }
            step(&mut local, s, &mut ctx);
            stack.append(&mut ctx.out);
        }
        return vec![finish(local)];
    }

    let pool = Pool {
        state: Mutex::new(PoolState {
            stack: roots,
            in_flight: 0,
        }),
        ready: Condvar::new(),
    };

    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                scope.spawn(|| {
                    let mut local = init();
                    let mut ctx = Ctx {
                        out: Vec::new(),
                        stop: &stop,
                    };
                    loop {
                        // Pop a state, or park until one appears / the
                        // search ends.
                        let task = {
                            let mut g = pool.state.lock().expect("pool poisoned");
                            loop {
                                if stop.load(Ordering::Relaxed) {
                                    break None;
                                }
                                if let Some(s) = g.stack.pop() {
                                    g.in_flight += 1;
                                    break Some(s);
                                }
                                if g.in_flight == 0 {
                                    break None;
                                }
                                g = pool.ready.wait(g).expect("pool poisoned");
                            }
                        };
                        let Some(s) = task else { break };

                        let guard = AbortOnPanic {
                            pool: &pool,
                            stop: &stop,
                        };
                        step(&mut local, s, &mut ctx);
                        std::mem::forget(guard);

                        let mut g = pool.state.lock().expect("pool poisoned");
                        g.stack.append(&mut ctx.out);
                        g.in_flight -= 1;
                        drop(g);
                        // Wake everyone: new work may have arrived, or this
                        // was the last in-flight expansion (termination).
                        pool.ready.notify_all();
                    }
                    // Unblock parked siblings so termination propagates.
                    pool.ready.notify_all();
                    finish(local)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("worker panicked"))
            .collect()
    })
}

/// The effective worker count for a machine configuration: the
/// configured value, with `0` mapped to the available parallelism.
pub fn effective_workers(configured: usize) -> usize {
    if configured == 0 {
        std::thread::available_parallelism().map_or(1, |n| n.get())
    } else {
        configured
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use promising_core::FpHasher;

    fn fp_of(n: u64) -> Fingerprint {
        let mut h = FpHasher::new();
        h.write_u64(n);
        h.finish128()
    }

    /// Exhaustively explore the binary tree of depths below `depth`,
    /// counting nodes; every worker count must agree.
    fn count_tree(workers: usize) -> (u64, usize) {
        let visited: ShardedVisited<u64> = ShardedVisited::new(true, workers);
        let root = 1u64;
        assert!(visited.insert(fp_of(root), || root));
        let results = drive(
            vec![root],
            workers,
            || 0u64,
            |count, node, ctx| {
                *count += 1;
                for child in [node * 2, node * 2 + 1] {
                    if child < 128 && visited.insert(fp_of(child), || child) {
                        ctx.push(child);
                    }
                }
            },
            |count| count,
        );
        (results.iter().sum(), visited.len())
    }

    #[test]
    fn serial_and_parallel_agree() {
        let (serial, serial_seen) = count_tree(1);
        assert_eq!(serial, 127);
        assert_eq!(serial_seen, 127);
        for workers in [2, 4, 8] {
            assert_eq!(count_tree(workers), (serial, serial_seen));
        }
    }

    #[test]
    fn revisits_are_suppressed() {
        let visited: ShardedVisited<u64> = ShardedVisited::new(false, 1);
        assert!(visited.insert(fp_of(7), || 7));
        assert!(!visited.insert(fp_of(7), || 7));
        assert_eq!(visited.len(), 1);
    }

    #[test]
    #[should_panic(expected = "fingerprint collision")]
    fn paranoid_mode_detects_collisions() {
        let visited: ShardedVisited<u64> = ShardedVisited::new(true, 1);
        assert!(visited.insert(fp_of(1), || 1));
        // Same fingerprint, different exact key: must panic.
        visited.insert(fp_of(1), || 2);
    }

    #[test]
    fn stop_cancels_parallel_search() {
        let visited: ShardedVisited<u64> = ShardedVisited::new(false, 4);
        let results = drive(
            vec![1u64],
            4,
            || 0u64,
            |count, node, ctx| {
                *count += 1;
                if *count > 10 {
                    ctx.stop();
                    return;
                }
                for child in [node * 2, node * 2 + 1] {
                    if visited.insert(fp_of(child), || child) {
                        ctx.push(child);
                    }
                }
            },
            |count| count,
        );
        // Unbounded tree: only cancellation lets this return.
        assert!(results.iter().sum::<u64>() > 0);
    }

    #[test]
    fn effective_workers_resolves_zero() {
        assert!(effective_workers(0) >= 1);
        assert_eq!(effective_workers(3), 3);
    }

    #[test]
    #[should_panic(expected = "worker panicked")]
    fn worker_panic_propagates_instead_of_deadlocking() {
        // A panicking step (e.g. a paranoid-mode collision assert) must
        // cancel the pool and propagate, not strand parked siblings.
        drive(
            vec![1u64, 2, 3, 4],
            4,
            || (),
            |_, node, ctx| {
                if node == 3 {
                    panic!("injected step failure");
                }
                ctx.push(node + 4);
            },
            |()| (),
        );
    }
}
