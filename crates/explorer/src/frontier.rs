//! The shared exploration frontier: a work pool of unexplored states, a
//! sharded visited set, and a driver that runs the search serially or on
//! scoped worker threads.
//!
//! Every exhaustive strategy in this workspace (naive, promise-first, and
//! Flat-lite's interleaving search) is the same loop: pop a state, expand
//! it, deduplicate successors against a visited set, push the fresh ones.
//! [`drive`] owns that loop; a strategy supplies three closures:
//!
//! * `init` — build the per-worker accumulator (stats, outcomes, memo
//!   tables; may contain non-`Send` data such as `Rc`, since it never
//!   leaves its worker thread);
//! * `step` — expand one state, pushing successors via [`Ctx::push`] and
//!   signalling global cancellation via [`Ctx::stop`] (deadlines);
//! * `finish` — reduce the accumulator to a `Send` result, merged by the
//!   caller (e.g. via `Stats::absorb`).
//!
//! With `workers == 1` the driver runs a plain LIFO stack with no
//! synchronisation — the serial path pays nothing for the abstraction.
//! With more workers it runs a mutex-guarded shared stack with condvar
//! parking and counts in-flight expansions for termination detection:
//! the search is done when the pool is empty *and* no worker is mid-step.
//! States are coarse-grained units (each expansion runs certification),
//! so a single shared stack does not contend in practice.
//!
//! Order independence: expanding a state depends only on that state, and
//! the visited set only ever *suppresses* re-expansion of an
//! already-seen state, so the set of expanded states — and therefore the
//! outcome set — is identical for any pop order and worker count.

use promising_core::{Fingerprint, FpBuildHasher};
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Condvar, Mutex, MutexGuard};

/// Lock a mutex, resuming it if a panicking worker poisoned it. Every
/// structure guarded here (visited-set shards, the work pool) is kept
/// consistent *within* each critical section — a panic can only strike
/// between data-structure operations (inside `exact()` in paranoid mode,
/// say), never mid-rehash — so the stored data is still valid and the
/// remaining workers can keep draining instead of cascading panics off
/// a poisoned lock.
fn lock_recover<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// Render a panic payload as text: the `&str`/`String` payloads produced
/// by `panic!` and `assert!` are shown verbatim; anything else (a
/// `panic_any` value) falls back to a placeholder naming the type
/// opaquely. Used to surface worker panics and to record `Panicked`
/// verdicts in the batch runner.
pub fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_string()
    }
}

/// A visited set keyed by 128-bit state fingerprints, striped over
/// independently locked shards so parallel workers rarely contend.
///
/// In paranoid mode ([`promising_core::Config::paranoid`]) each entry
/// additionally stores the exact state key `K`; inserting a *different*
/// state with the same fingerprint panics, turning a silent dedup error
/// into a loud test failure.
pub struct ShardedVisited<K> {
    shards: Vec<Mutex<HashMap<Fingerprint, Option<K>, FpBuildHasher>>>,
    paranoid: bool,
    /// `shards.len() - 1`; shard count is a power of two.
    mask: u64,
}

impl<K: Eq + std::fmt::Debug> ShardedVisited<K> {
    /// A visited set sized for `workers` parallel writers.
    pub fn new(paranoid: bool, workers: usize) -> ShardedVisited<K> {
        let shards = if workers <= 1 {
            1
        } else {
            (workers * 8).next_power_of_two().min(256)
        };
        ShardedVisited {
            shards: (0..shards)
                .map(|_| Mutex::new(HashMap::default()))
                .collect(),
            paranoid,
            mask: shards as u64 - 1,
        }
    }

    /// Insert a state, returning `true` if it was new. `exact` is only
    /// evaluated in paranoid mode.
    ///
    /// # Panics
    ///
    /// In paranoid mode, panics if `fp` is already present with a
    /// *different* exact key — a fingerprint collision.
    pub fn insert(&self, fp: Fingerprint, exact: impl FnOnce() -> K) -> bool {
        // The fingerprint is uniform; any bit range selects a shard. Use
        // high bits — the identity hasher folds low bits into the bucket
        // index within the shard.
        let shard = ((fp.0 >> 64) as u64 >> 32) & self.mask;
        let mut guard = lock_recover(&self.shards[shard as usize]);
        match guard.entry(fp) {
            std::collections::hash_map::Entry::Occupied(e) => {
                if self.paranoid {
                    let stored = e.get();
                    let fresh = exact();
                    assert!(
                        stored.as_ref() == Some(&fresh),
                        "state fingerprint collision at {fp}:\n  stored: {stored:?}\n  fresh:  {fresh:?}"
                    );
                }
                false
            }
            std::collections::hash_map::Entry::Vacant(v) => {
                v.insert(self.paranoid.then(exact));
                true
            }
        }
    }

    /// Number of distinct states recorded.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| lock_recover(s).len()).sum()
    }

    /// Whether no state has been recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Per-step context: successor buffer and the global cancellation flag.
pub struct Ctx<'a, S> {
    out: Vec<S>,
    stop: &'a AtomicBool,
}

impl<S> Ctx<'_, S> {
    /// Schedule a successor state for expansion.
    pub fn push(&mut self, s: S) {
        self.out.push(s);
    }

    /// Cancel the whole search (deadline hit); workers drain and exit.
    pub fn stop(&self) {
        self.stop.store(true, Ordering::Relaxed);
    }

    /// Whether cancellation was requested.
    pub fn stopped(&self) -> bool {
        self.stop.load(Ordering::Relaxed)
    }
}

struct Pool<S> {
    state: Mutex<PoolState<S>>,
    ready: Condvar,
}

struct PoolState<S> {
    stack: Vec<S>,
    /// Workers currently inside `step` (they may still push successors).
    in_flight: usize,
}

/// Unwind guard around a `step` call: if the step panics, the worker
/// would otherwise leave `in_flight` incremented forever and deadlock
/// its parked siblings. The guard's `Drop` (reached only on unwind — the
/// normal path defuses it with `mem::forget`) decrements the counter,
/// raises the stop flag, and wakes everyone so the panic propagates out
/// of `thread::scope` instead of hanging the process.
struct AbortOnPanic<'a, S> {
    pool: &'a Pool<S>,
    stop: &'a AtomicBool,
}

impl<S> Drop for AbortOnPanic<'_, S> {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        let mut g = self
            .pool
            .state
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        g.in_flight -= 1;
        drop(g);
        self.pool.ready.notify_all();
    }
}

/// Run the exploration loop over `roots`.
///
/// Returns one `finish` result per worker (a single-element vector on the
/// serial path). See the module docs for the closure contract.
pub fn drive<S, L, R>(
    roots: Vec<S>,
    workers: usize,
    init: impl Fn() -> L + Sync,
    step: impl Fn(&mut L, S, &mut Ctx<'_, S>) + Sync,
    finish: impl Fn(L) -> R + Sync,
) -> Vec<R>
where
    S: Send,
    R: Send,
{
    let stop = AtomicBool::new(false);

    if workers <= 1 {
        let mut local = init();
        let mut stack = roots;
        let mut ctx = Ctx {
            out: Vec::new(),
            stop: &stop,
        };
        while let Some(s) = stack.pop() {
            if ctx.stopped() {
                break;
            }
            step(&mut local, s, &mut ctx);
            stack.append(&mut ctx.out);
        }
        return vec![finish(local)];
    }

    let pool = Pool {
        state: Mutex::new(PoolState {
            stack: roots,
            in_flight: 0,
        }),
        ready: Condvar::new(),
    };

    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                scope.spawn(|| {
                    let mut local = init();
                    let mut ctx = Ctx {
                        out: Vec::new(),
                        stop: &stop,
                    };
                    loop {
                        // Pop a state, or park until one appears / the
                        // search ends.
                        let task = {
                            let mut g = lock_recover(&pool.state);
                            loop {
                                if stop.load(Ordering::Relaxed) {
                                    break None;
                                }
                                if let Some(s) = g.stack.pop() {
                                    g.in_flight += 1;
                                    break Some(s);
                                }
                                if g.in_flight == 0 {
                                    break None;
                                }
                                g = pool
                                    .ready
                                    .wait(g)
                                    .unwrap_or_else(|poisoned| poisoned.into_inner());
                            }
                        };
                        let Some(s) = task else { break };

                        let guard = AbortOnPanic {
                            pool: &pool,
                            stop: &stop,
                        };
                        step(&mut local, s, &mut ctx);
                        std::mem::forget(guard);

                        let mut g = lock_recover(&pool.state);
                        g.stack.append(&mut ctx.out);
                        g.in_flight -= 1;
                        drop(g);
                        // Wake everyone: new work may have arrived, or this
                        // was the last in-flight expansion (termination).
                        pool.ready.notify_all();
                    }
                    // Unblock parked siblings so termination propagates.
                    pool.ready.notify_all();
                    finish(local)
                })
            })
            .collect();

        // Join every worker before deciding the run's fate: siblings of a
        // panicking worker drain normally (AbortOnPanic raised the stop
        // flag), so nothing is left running. If any worker panicked,
        // re-raise ONE panic that names the first failing worker and
        // carries its payload text — the per-test isolation layer
        // (`catch_unwind` in the harness) turns that into a `Panicked`
        // verdict instead of a dead campaign.
        let mut results = Vec::with_capacity(workers);
        let mut first_panic: Option<(usize, String)> = None;
        for (ix, h) in handles.into_iter().enumerate() {
            match h.join() {
                Ok(r) => results.push(r),
                Err(payload) => {
                    if first_panic.is_none() {
                        first_panic = Some((ix, panic_message(payload.as_ref())));
                    }
                }
            }
        }
        if let Some((ix, msg)) = first_panic {
            panic!("exploration worker {ix} of {workers} panicked: {msg}");
        }
        results
    })
}

/// The effective worker count for a machine configuration: the
/// configured value, with `0` mapped to the available parallelism.
pub fn effective_workers(configured: usize) -> usize {
    if configured == 0 {
        std::thread::available_parallelism().map_or(1, |n| n.get())
    } else {
        configured
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use promising_core::FpHasher;

    fn fp_of(n: u64) -> Fingerprint {
        let mut h = FpHasher::new();
        h.write_u64(n);
        h.finish128()
    }

    /// Exhaustively explore the binary tree of depths below `depth`,
    /// counting nodes; every worker count must agree.
    fn count_tree(workers: usize) -> (u64, usize) {
        let visited: ShardedVisited<u64> = ShardedVisited::new(true, workers);
        let root = 1u64;
        assert!(visited.insert(fp_of(root), || root));
        let results = drive(
            vec![root],
            workers,
            || 0u64,
            |count, node, ctx| {
                *count += 1;
                for child in [node * 2, node * 2 + 1] {
                    if child < 128 && visited.insert(fp_of(child), || child) {
                        ctx.push(child);
                    }
                }
            },
            |count| count,
        );
        (results.iter().sum(), visited.len())
    }

    #[test]
    fn serial_and_parallel_agree() {
        let (serial, serial_seen) = count_tree(1);
        assert_eq!(serial, 127);
        assert_eq!(serial_seen, 127);
        for workers in [2, 4, 8] {
            assert_eq!(count_tree(workers), (serial, serial_seen));
        }
    }

    #[test]
    fn revisits_are_suppressed() {
        let visited: ShardedVisited<u64> = ShardedVisited::new(false, 1);
        assert!(visited.insert(fp_of(7), || 7));
        assert!(!visited.insert(fp_of(7), || 7));
        assert_eq!(visited.len(), 1);
    }

    #[test]
    #[should_panic(expected = "fingerprint collision")]
    fn paranoid_mode_detects_collisions() {
        let visited: ShardedVisited<u64> = ShardedVisited::new(true, 1);
        assert!(visited.insert(fp_of(1), || 1));
        // Same fingerprint, different exact key: must panic.
        visited.insert(fp_of(1), || 2);
    }

    #[test]
    fn stop_cancels_parallel_search() {
        let visited: ShardedVisited<u64> = ShardedVisited::new(false, 4);
        let results = drive(
            vec![1u64],
            4,
            || 0u64,
            |count, node, ctx| {
                *count += 1;
                if *count > 10 {
                    ctx.stop();
                    return;
                }
                for child in [node * 2, node * 2 + 1] {
                    if visited.insert(fp_of(child), || child) {
                        ctx.push(child);
                    }
                }
            },
            |count| count,
        );
        // Unbounded tree: only cancellation lets this return.
        assert!(results.iter().sum::<u64>() > 0);
    }

    #[test]
    fn effective_workers_resolves_zero() {
        assert!(effective_workers(0) >= 1);
        assert_eq!(effective_workers(3), 3);
    }

    #[test]
    fn worker_panic_surfaces_payload_and_worker_index() {
        // A panicking step (e.g. a paranoid-mode collision assert) must
        // cancel the pool and propagate — naming the failing worker and
        // carrying the original payload — not strand parked siblings or
        // die with an anonymous "worker panicked".
        let err = std::panic::catch_unwind(|| {
            drive(
                vec![1u64, 2, 3, 4],
                4,
                || (),
                |_, node, ctx| {
                    if node == 3 {
                        panic!("injected step failure");
                    }
                    ctx.push(node + 4);
                },
                |()| (),
            )
        })
        .expect_err("a worker panicked; drive must re-raise");
        let msg = panic_message(err.as_ref());
        assert!(msg.contains("exploration worker"), "{msg}");
        assert!(msg.contains("of 4 panicked"), "{msg}");
        assert!(msg.contains("injected step failure"), "{msg}");
    }

    #[test]
    fn visited_set_recovers_from_poisoned_shards() {
        // Paranoid-mode collision asserts panic while holding a shard
        // lock; subsequent inserts on that shard must keep working (the
        // map itself is still consistent — the panic fires between map
        // operations).
        let visited: std::sync::Arc<ShardedVisited<u64>> =
            std::sync::Arc::new(ShardedVisited::new(true, 1));
        assert!(visited.insert(fp_of(1), || 1));
        let v = std::sync::Arc::clone(&visited);
        let poisoner = std::thread::spawn(move || {
            v.insert(fp_of(1), || 2); // collision: panics holding the lock
        });
        assert!(poisoner.join().is_err(), "collision assert must fire");
        // The single shard is now poisoned; inserts still succeed.
        assert!(visited.insert(fp_of(2), || 2));
        assert!(!visited.insert(fp_of(2), || 2));
        assert_eq!(visited.len(), 2);
    }

    #[test]
    fn panic_message_renders_common_payloads() {
        let err = std::panic::catch_unwind(|| panic!("plain {}", "text")).unwrap_err();
        assert_eq!(panic_message(err.as_ref()), "plain text");
        let err = std::panic::catch_unwind(|| std::panic::panic_any(42u32)).unwrap_err();
        assert_eq!(panic_message(err.as_ref()), "<non-string panic payload>");
    }
}
