//! The exploration frontier: per-worker work-stealing deques, a sharded
//! visited set with arena-interned exact keys and batched probes, and a
//! driver that runs the search serially or on scoped worker threads.
//!
//! Every exhaustive strategy in this workspace (naive, promise-first, and
//! Flat-lite's interleaving search) is the same loop: pop a state, expand
//! it, deduplicate successors against a visited set, push the fresh ones.
//! [`drive`] owns that loop; a strategy supplies three closures:
//!
//! * `init` — build the per-worker accumulator (stats, outcomes, memo
//!   tables; may contain non-`Send` data such as `Rc`, since it never
//!   leaves its worker thread);
//! * `step` — expand one state, pushing successors via [`Ctx::push`] and
//!   signalling global cancellation via [`Ctx::stop`] (deadlines);
//! * `finish` — reduce the accumulator plus the driver's [`WorkerReport`]
//!   to a `Send` result, merged by the caller (e.g. via `Stats::absorb`).
//!
//! With `workers == 1` the driver runs a plain LIFO stack with no
//! synchronisation — the serial path pays nothing for the abstraction.
//! With more workers each thread owns a bounded Chase–Lev-style deque:
//! the owner pushes and pops its bottom end LIFO (depth-first locality,
//! no lock, no contention), while idle workers *steal* from the top end
//! FIFO with a single CAS — stealing the oldest, shallowest states,
//! which are the biggest subtrees and amortise the steal best. A deque
//! that fills past its fixed capacity spills into a shared mutex-guarded
//! reservoir (rare: only monster fan-outs hit it).
//!
//! Termination is a single counter: `active` = states queued anywhere +
//! expansions in flight. Obtaining a state does not change it (the state
//! goes from "queued" to "in flight"); finishing a step adds the number
//! of successors pushed and subtracts one for the state consumed, so
//! `active == 0` is exactly "nothing queued, nobody mid-step" with no
//! two-counter interleaving window. Idle workers that find every deque
//! empty park on a condvar; producers bump a work epoch *after* making
//! new work visible and wake sleepers, with a short timed wait as a
//! belt-and-suspenders backstop.
//!
//! Order independence: expanding a state depends only on that state, and
//! the visited set only ever *suppresses* re-expansion of an
//! already-seen state, so the set of expanded states — and therefore the
//! outcome set — is identical for any pop/steal order and worker count.

use crate::engine::SplitMix64;
use promising_core::{Arena, ArenaIx, Fingerprint, FpBuildHasher};
use std::collections::HashMap;
use std::sync::atomic::{fence, AtomicBool, AtomicI64, AtomicPtr, AtomicU64, Ordering};
use std::sync::{Condvar, Mutex, MutexGuard};
use std::time::Duration;

/// Lock a mutex, resuming it if a panicking worker poisoned it. Every
/// structure guarded here (visited-set shards, the overflow reservoir)
/// is kept consistent *within* each critical section — a panic can only
/// strike between data-structure operations (inside `exact()` in
/// paranoid mode, say), never mid-rehash — so the stored data is still
/// valid and the remaining workers can keep draining instead of
/// cascading panics off a poisoned lock.
fn lock_recover<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// Render a panic payload as text: the `&str`/`String` payloads produced
/// by `panic!` and `assert!` are shown verbatim; anything else (a
/// `panic_any` value) falls back to a placeholder naming the type
/// opaquely. Used to surface worker panics and to record `Panicked`
/// verdicts in the batch runner.
pub fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_string()
    }
}

/// Sentinel for "no exact key interned" (non-paranoid entries).
const NO_KEY: u32 = u32::MAX;

/// One visited-set shard: the fingerprint map plus the bump arena
/// interning this shard's exact keys (paranoid mode). Keys live
/// out-of-line so the hot map slot is `(Fingerprint, u32)` regardless of
/// how large the exact state key type is, and the per-key allocation is
/// a bump into a chunk rather than an allocator round-trip.
struct Shard<K> {
    map: HashMap<Fingerprint, u32, FpBuildHasher>,
    keys: Arena<K>,
}

/// A visited set keyed by 128-bit state fingerprints, striped over
/// independently locked shards so parallel workers rarely contend.
/// [`ShardedVisited::insert_batch`] additionally groups a whole batch of
/// probes by shard and takes each shard lock once per batch.
///
/// In paranoid mode ([`promising_core::Config::paranoid`]) each entry
/// additionally interns the exact state key `K` in a per-shard
/// [`Arena`]; inserting a *different* state with the same fingerprint
/// panics, turning a silent dedup error into a loud test failure.
pub struct ShardedVisited<K> {
    shards: Vec<Mutex<Shard<K>>>,
    paranoid: bool,
    /// `shards.len() - 1`; shard count is a power of two.
    mask: u64,
}

impl<K: Eq + std::fmt::Debug> ShardedVisited<K> {
    /// A visited set sized for `workers` parallel writers.
    pub fn new(paranoid: bool, workers: usize) -> ShardedVisited<K> {
        let shards = if workers <= 1 {
            1
        } else {
            (workers * 8).next_power_of_two().min(256)
        };
        ShardedVisited {
            shards: (0..shards)
                .map(|_| {
                    Mutex::new(Shard {
                        map: HashMap::default(),
                        keys: Arena::new(),
                    })
                })
                .collect(),
            paranoid,
            mask: shards as u64 - 1,
        }
    }

    /// The shard index for a fingerprint. The fingerprint is uniform;
    /// any bit range selects a shard. Use high bits — the identity
    /// hasher folds low bits into the bucket index within the shard.
    fn shard_ix(&self, fp: Fingerprint) -> usize {
        ((((fp.0 >> 64) as u64) >> 32) & self.mask) as usize
    }

    /// Insert into a locked shard; shared by the scalar and batched
    /// entry points.
    fn insert_locked(
        &self,
        shard: &mut Shard<K>,
        fp: Fingerprint,
        exact: impl FnOnce() -> K,
    ) -> bool {
        let Shard { map, keys } = shard;
        match map.entry(fp) {
            std::collections::hash_map::Entry::Occupied(e) => {
                if self.paranoid {
                    let stored = keys.get(ArenaIx(*e.get()));
                    let fresh = exact();
                    assert!(
                        *stored == fresh,
                        "state fingerprint collision at {fp}:\n  stored: {stored:?}\n  fresh:  {fresh:?}"
                    );
                }
                false
            }
            std::collections::hash_map::Entry::Vacant(v) => {
                let ix = if self.paranoid {
                    keys.push(exact()).0
                } else {
                    NO_KEY
                };
                v.insert(ix);
                true
            }
        }
    }

    /// Insert a state, returning `true` if it was new. `exact` is only
    /// evaluated in paranoid mode.
    ///
    /// # Panics
    ///
    /// In paranoid mode, panics if `fp` is already present with a
    /// *different* exact key — a fingerprint collision.
    pub fn insert(&self, fp: Fingerprint, exact: impl FnOnce() -> K) -> bool {
        let mut guard = lock_recover(&self.shards[self.shard_ix(fp)]);
        self.insert_locked(&mut guard, fp, exact)
    }

    /// Insert a batch of states, taking each shard lock at most once for
    /// the whole batch (one lock total on the serial single-shard
    /// layout). `fresh` is cleared and refilled with one newness flag
    /// per item, in input order; `exact` is only evaluated in paranoid
    /// mode, and only for the items actually probed.
    ///
    /// Equivalent to calling [`ShardedVisited::insert`] per item (the
    /// visited set only ever suppresses re-expansion, so batching probes
    /// cannot change which states are new — only how many times the
    /// shard locks are taken).
    ///
    /// # Panics
    ///
    /// In paranoid mode, panics on the first fingerprint collision in
    /// the batch.
    pub fn insert_batch<T>(
        &self,
        items: &[T],
        fp_of: impl Fn(&T) -> Fingerprint,
        exact: impl Fn(&T) -> K,
        fresh: &mut Vec<bool>,
    ) {
        fresh.clear();
        fresh.resize(items.len(), false);
        if items.is_empty() {
            return;
        }
        if self.mask == 0 {
            // Serial layout: the whole batch is one critical section.
            let mut guard = lock_recover(&self.shards[0]);
            for (i, it) in items.iter().enumerate() {
                fresh[i] = self.insert_locked(&mut guard, fp_of(it), || exact(it));
            }
            return;
        }
        // Group by shard without sorting: pick the first unprocessed
        // item's shard, handle every batch item on that shard under one
        // lock, repeat. Quadratic in distinct shards per batch, which is
        // tiny (a batch is one expansion's successors).
        let mut done = vec![false; items.len()];
        for i in 0..items.len() {
            if done[i] {
                continue;
            }
            let s = self.shard_ix(fp_of(&items[i]));
            let mut guard = lock_recover(&self.shards[s]);
            for (j, it) in items.iter().enumerate().skip(i) {
                if !done[j] && self.shard_ix(fp_of(it)) == s {
                    done[j] = true;
                    fresh[j] = self.insert_locked(&mut guard, fp_of(it), || exact(it));
                }
            }
        }
    }

    /// Number of distinct states recorded.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| lock_recover(s).map.len()).sum()
    }

    /// Whether no state has been recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Approximate resident bytes of the visited structure itself: map
    /// slots at capacity plus the exact-key arenas. Heap data owned by
    /// the keys is *not* chased — the engine charges that per state via
    /// `SearchModel::approx_state_bytes`.
    pub fn bytes(&self) -> usize {
        self.shards
            .iter()
            .map(|s| {
                let g = lock_recover(s);
                g.map.capacity() * (std::mem::size_of::<(Fingerprint, u32)>() + 1) + g.keys.bytes()
            })
            .sum()
    }
}

/// Per-step context: successor buffer and the global cancellation flag.
pub struct Ctx<'a, S> {
    out: Vec<S>,
    stop: &'a AtomicBool,
}

impl<S> Ctx<'_, S> {
    /// Schedule a successor state for expansion.
    pub fn push(&mut self, s: S) {
        self.out.push(s);
    }

    /// Cancel the whole search (deadline hit); workers drain and exit.
    pub fn stop(&self) {
        self.stop.store(true, Ordering::Relaxed);
    }

    /// Whether cancellation was requested.
    pub fn stopped(&self) -> bool {
        self.stop.load(Ordering::Relaxed)
    }
}

/// What the driver observed about one worker's run, handed to `finish`
/// beside the strategy's own accumulator.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct WorkerReport {
    /// States this worker obtained by stealing from a sibling's deque
    /// (zero on the serial path).
    pub steals: u64,
}

/// Fixed capacity of each worker's local deque (power of two). Overflow
/// spills into the shared reservoir, so this bounds memory and steal
/// latency, not the search.
const LOCAL_CAP: usize = 1024;

/// Result of one steal attempt.
enum Stolen<S> {
    /// Won the race: the stolen state.
    Taken(Box<S>),
    /// The deque was (apparently) empty.
    Empty,
    /// Lost a CAS race with the owner or another thief; work may remain.
    Retry,
}

/// A bounded Chase–Lev work-stealing deque over boxed states.
///
/// The owner pushes/pops `bottom` (LIFO); thieves CAS `top` upward
/// (FIFO). Slots hold raw pointers (from `Box::into_raw`) rather than
/// inline values so a racing thief never performs a potentially torn
/// read of a non-`Copy` state: a thief reads only the pointer word
/// (atomic), and dereferences it *only after* winning the `top` CAS.
///
/// Why a won CAS guarantees the pointer is valid: the slot for index `t`
/// can only be overwritten by an owner push at index `t + capacity`,
/// which the owner reaches only after observing `top > t` (the push-side
/// fullness check) — and any execution where `top` advanced past `t`
/// makes our `compare_exchange(t, t+1)` fail. Likewise the only other
/// parties that free index `t`'s box (the owner's last-element pop, a
/// sibling thief) do so through the same CAS on `top = t`, which at most
/// one contender wins. A lost CAS simply discards the pointer copy.
struct Deque<S> {
    /// Steal end: monotonically increasing; thieves CAS it.
    top: AtomicI64,
    /// Owner end: only the owner writes it (transiently decremented
    /// during pop, hence signed).
    bottom: AtomicI64,
    slots: Box<[AtomicPtr<S>]>,
    mask: i64,
}

impl<S> Deque<S> {
    fn new() -> Deque<S> {
        Deque {
            top: AtomicI64::new(0),
            bottom: AtomicI64::new(0),
            slots: (0..LOCAL_CAP)
                .map(|_| AtomicPtr::new(std::ptr::null_mut()))
                .collect(),
            mask: LOCAL_CAP as i64 - 1,
        }
    }

    /// Owner-only: push a state, spilling to `reservoir` when full.
    fn push(&self, s: S, reservoir: &Mutex<Vec<S>>) {
        let b = self.bottom.load(Ordering::Relaxed);
        let t = self.top.load(Ordering::Acquire);
        if b - t >= LOCAL_CAP as i64 {
            // Full (a stale-low `top` read only makes this conservative).
            lock_recover(reservoir).push(s);
            return;
        }
        let p = Box::into_raw(Box::new(s));
        self.slots[(b & self.mask) as usize].store(p, Ordering::Relaxed);
        // Publish the slot before advancing `bottom`: a thief that
        // observes the new `bottom` (Acquire) must see the pointer.
        self.bottom.store(b + 1, Ordering::Release);
    }

    /// Owner-only: pop the most recently pushed state (LIFO).
    fn pop(&self) -> Option<Box<S>> {
        let b = self.bottom.load(Ordering::Relaxed) - 1;
        self.bottom.store(b, Ordering::Relaxed);
        // Order the `bottom` write before the `top` read (the classic
        // Chase–Lev store-load fence); a thief does the mirror image.
        fence(Ordering::SeqCst);
        let t = self.top.load(Ordering::Relaxed);
        if t < b {
            // More than one element: the decrement already claimed ours.
            let p = self.slots[(b & self.mask) as usize].load(Ordering::Relaxed);
            return Some(unsafe { Box::from_raw(p) });
        }
        if t == b {
            // Last element: race any thieves for it via the `top` CAS.
            let won = self
                .top
                .compare_exchange(t, t + 1, Ordering::SeqCst, Ordering::Relaxed)
                .is_ok();
            self.bottom.store(b + 1, Ordering::Relaxed);
            if won {
                let p = self.slots[(b & self.mask) as usize].load(Ordering::Relaxed);
                return Some(unsafe { Box::from_raw(p) });
            }
            return None;
        }
        // Empty: restore bottom.
        self.bottom.store(b + 1, Ordering::Relaxed);
        None
    }

    /// Thief: try to take the oldest state (FIFO end).
    fn steal(&self) -> Stolen<S> {
        let t = self.top.load(Ordering::Acquire);
        fence(Ordering::SeqCst);
        let b = self.bottom.load(Ordering::Acquire);
        if t >= b {
            return Stolen::Empty;
        }
        // Read the pointer *before* the CAS; dereference only after
        // winning it (see the type-level safety argument).
        let p = self.slots[(t & self.mask) as usize].load(Ordering::Relaxed);
        if self
            .top
            .compare_exchange(t, t + 1, Ordering::SeqCst, Ordering::Relaxed)
            .is_ok()
        {
            Stolen::Taken(unsafe { Box::from_raw(p) })
        } else {
            Stolen::Retry
        }
    }
}

impl<S> Drop for Deque<S> {
    fn drop(&mut self) {
        // Single-threaded by the time a deque drops (after scope join);
        // free whatever a cancelled search left behind.
        let t = *self.top.get_mut();
        let b = *self.bottom.get_mut();
        for i in t..b {
            let p = *self.slots[(i & self.mask) as usize].get_mut();
            if !p.is_null() {
                drop(unsafe { Box::from_raw(p) });
            }
        }
    }
}

/// The shared state of a parallel run: the per-worker deques, the
/// overflow reservoir, and the termination/parking machinery.
struct StealPool<S> {
    deques: Vec<Deque<S>>,
    /// Spill-over for deques past [`LOCAL_CAP`]; also absorbs root
    /// surplus when `roots > workers × LOCAL_CAP`.
    reservoir: Mutex<Vec<S>>,
    /// States queued anywhere + expansions in flight. Obtaining a state
    /// leaves it unchanged; retiring a step adds `successors - 1`.
    /// Exactly zero ⟺ the search is drained.
    active: AtomicI64,
    done: AtomicBool,
    /// Bumped after new work becomes visible; parked workers recheck it.
    epoch: AtomicU64,
    sleepers: AtomicU64,
    park: Mutex<()>,
    ready: Condvar,
}

impl<S> StealPool<S> {
    fn wake_all(&self) {
        drop(lock_recover(&self.park));
        self.ready.notify_all();
    }

    /// Credit `pushed` successors to `active` — MUST run before the
    /// successors become stealable, else a thief that steals and retires
    /// one first could drive `active` to zero and latch `done` while
    /// work still exists.
    fn credit(&self, pushed: i64) {
        if pushed > 0 {
            self.active.fetch_add(pushed, Ordering::SeqCst);
        }
    }

    /// Retire one finished step whose `pushed` successors were already
    /// credited and published.
    fn retire(&self, pushed: i64) {
        let now = self.active.fetch_sub(1, Ordering::SeqCst) - 1;
        if now == 0 {
            self.done.store(true, Ordering::SeqCst);
            self.wake_all();
        } else if pushed > 0 {
            self.epoch.fetch_add(1, Ordering::SeqCst);
            if self.sleepers.load(Ordering::SeqCst) > 0 {
                self.wake_all();
            }
        }
    }

    /// Get the next state for worker `me`: local LIFO pop, then the
    /// reservoir, then randomized stealing; park when everything looks
    /// empty. `None` means the search is over (drained or cancelled).
    fn fetch(
        &self,
        me: usize,
        rng: &mut SplitMix64,
        stop: &AtomicBool,
        report: &mut WorkerReport,
    ) -> Option<S> {
        let n = self.deques.len();
        loop {
            if stop.load(Ordering::Relaxed) || self.done.load(Ordering::SeqCst) {
                return None;
            }
            // Record the epoch before probing: a producer bumps it after
            // making work visible, so "no work found at epoch e" + "epoch
            // still e under the park lock" justifies sleeping.
            let epoch = self.epoch.load(Ordering::SeqCst);
            if let Some(b) = self.deques[me].pop() {
                return Some(*b);
            }
            if let Some(s) = lock_recover(&self.reservoir).pop() {
                return Some(s);
            }
            let mut contended = false;
            let offset = rng.below(n);
            for k in 0..n {
                let v = (offset + k) % n;
                if v == me {
                    continue;
                }
                match self.deques[v].steal() {
                    Stolen::Taken(b) => {
                        report.steals += 1;
                        return Some(*b);
                    }
                    Stolen::Empty => {}
                    Stolen::Retry => contended = true,
                }
            }
            if contended {
                // Someone has work in hand; spin rather than sleep.
                std::hint::spin_loop();
                continue;
            }
            self.sleepers.fetch_add(1, Ordering::SeqCst);
            let g = lock_recover(&self.park);
            if self.epoch.load(Ordering::SeqCst) == epoch
                && !self.done.load(Ordering::SeqCst)
                && !stop.load(Ordering::Relaxed)
            {
                // The timed wait is a backstop against a lost wakeup
                // (and lets stop-flag cancellation propagate promptly);
                // the epoch/notify protocol is the primary signal.
                let (g, _) = self
                    .ready
                    .wait_timeout(g, Duration::from_millis(1))
                    .unwrap_or_else(|poisoned| poisoned.into_inner());
                drop(g);
            } else {
                drop(g);
            }
            self.sleepers.fetch_sub(1, Ordering::SeqCst);
        }
    }
}

/// Unwind guard around a `step` call: if the step panics, the worker
/// would otherwise leave `active` counting its in-flight expansion
/// forever and strand its parked siblings. The guard's `Drop` (reached
/// only on unwind — the normal path defuses it with `mem::forget`)
/// raises the stop flag and wakes everyone so the panic propagates out
/// of `thread::scope` instead of hanging the process.
struct AbortOnPanic<'a, S> {
    pool: &'a StealPool<S>,
    stop: &'a AtomicBool,
}

impl<S> Drop for AbortOnPanic<'_, S> {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        self.pool.wake_all();
    }
}

/// Run the exploration loop over `roots`.
///
/// Returns one `finish` result per worker (a single-element vector on the
/// serial path). See the module docs for the closure contract.
pub fn drive<S, L, R>(
    roots: Vec<S>,
    workers: usize,
    init: impl Fn() -> L + Sync,
    step: impl Fn(&mut L, S, &mut Ctx<'_, S>) + Sync,
    finish: impl Fn(L, WorkerReport) -> R + Sync,
) -> Vec<R>
where
    S: Send,
    R: Send,
{
    let stop = AtomicBool::new(false);

    if workers <= 1 {
        let mut local = init();
        let mut stack = roots;
        let mut ctx = Ctx {
            out: Vec::new(),
            stop: &stop,
        };
        while let Some(s) = stack.pop() {
            if ctx.stopped() {
                break;
            }
            step(&mut local, s, &mut ctx);
            stack.append(&mut ctx.out);
        }
        return vec![finish(local, WorkerReport::default())];
    }

    let pool = StealPool {
        deques: (0..workers).map(|_| Deque::new()).collect(),
        reservoir: Mutex::new(Vec::new()),
        active: AtomicI64::new(roots.len() as i64),
        done: AtomicBool::new(roots.is_empty()),
        epoch: AtomicU64::new(0),
        sleepers: AtomicU64::new(0),
        park: Mutex::new(()),
        ready: Condvar::new(),
    };
    // Seed the deques round-robin (single-threaded: the owner-only push
    // contract is trivially met before any worker spawns).
    for (i, s) in roots.into_iter().enumerate() {
        pool.deques[i % workers].push(s, &pool.reservoir);
    }

    std::thread::scope(|scope| {
        let pool = &pool;
        let stop = &stop;
        let handles: Vec<_> = (0..workers)
            .map(|ix| {
                let init = &init;
                let step = &step;
                let finish = &finish;
                scope.spawn(move || {
                    let mut local = init();
                    // Victim selection only — outcome sets are identical
                    // for every steal order, so any fixed seed is fine.
                    let mut rng = SplitMix64::new(0x5EED ^ (ix as u64) << 17);
                    let mut report = WorkerReport::default();
                    let mut ctx = Ctx {
                        out: Vec::new(),
                        stop,
                    };
                    while let Some(s) = pool.fetch(ix, &mut rng, stop, &mut report) {
                        let guard = AbortOnPanic { pool, stop };
                        step(&mut local, s, &mut ctx);
                        std::mem::forget(guard);

                        let pushed = ctx.out.len() as i64;
                        pool.credit(pushed);
                        for succ in ctx.out.drain(..) {
                            pool.deques[ix].push(succ, &pool.reservoir);
                        }
                        pool.retire(pushed);
                    }
                    // Unblock parked siblings so termination propagates.
                    pool.wake_all();
                    finish(local, report)
                })
            })
            .collect();

        // Join every worker before deciding the run's fate: siblings of a
        // panicking worker drain normally (AbortOnPanic raised the stop
        // flag), so nothing is left running. If any worker panicked,
        // re-raise ONE panic that names the first failing worker and
        // carries its payload text — the per-test isolation layer
        // (`catch_unwind` in the harness) turns that into a `Panicked`
        // verdict instead of a dead campaign.
        let mut results = Vec::with_capacity(workers);
        let mut first_panic: Option<(usize, String)> = None;
        for (ix, h) in handles.into_iter().enumerate() {
            match h.join() {
                Ok(r) => results.push(r),
                Err(payload) => {
                    if first_panic.is_none() {
                        first_panic = Some((ix, panic_message(payload.as_ref())));
                    }
                }
            }
        }
        if let Some((ix, msg)) = first_panic {
            panic!("exploration worker {ix} of {workers} panicked: {msg}");
        }
        results
    })
}

/// The effective worker count for a machine configuration: the
/// configured value, with `0` mapped to the available parallelism.
pub fn effective_workers(configured: usize) -> usize {
    if configured == 0 {
        std::thread::available_parallelism().map_or(1, |n| n.get())
    } else {
        configured
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use promising_core::FpHasher;

    fn fp_of(n: u64) -> Fingerprint {
        let mut h = FpHasher::new();
        h.write_u64(n);
        h.finish128()
    }

    /// Exhaustively explore the binary tree of depths below `depth`,
    /// counting nodes; every worker count must agree.
    fn count_tree(workers: usize) -> (u64, usize) {
        let visited: ShardedVisited<u64> = ShardedVisited::new(true, workers);
        let root = 1u64;
        assert!(visited.insert(fp_of(root), || root));
        let results = drive(
            vec![root],
            workers,
            || 0u64,
            |count, node, ctx| {
                *count += 1;
                for child in [node * 2, node * 2 + 1] {
                    if child < 128 && visited.insert(fp_of(child), || child) {
                        ctx.push(child);
                    }
                }
            },
            |count, _report| count,
        );
        (results.iter().sum(), visited.len())
    }

    #[test]
    fn serial_and_parallel_agree() {
        let (serial, serial_seen) = count_tree(1);
        assert_eq!(serial, 127);
        assert_eq!(serial_seen, 127);
        for workers in [2, 4, 8] {
            assert_eq!(count_tree(workers), (serial, serial_seen));
        }
    }

    #[test]
    fn deque_is_lifo_for_owner_and_fifo_for_thief() {
        let reservoir = Mutex::new(Vec::new());
        let d: Deque<u64> = Deque::new();
        for v in 0..10 {
            d.push(v, &reservoir);
        }
        assert!(reservoir.lock().unwrap().is_empty());
        assert_eq!(d.pop().map(|b| *b), Some(9), "owner pops newest");
        match d.steal() {
            Stolen::Taken(b) => assert_eq!(*b, 0, "thief takes oldest"),
            _ => panic!("steal from a non-empty deque must succeed unraced"),
        }
        let rest: Vec<u64> = std::iter::from_fn(|| d.pop().map(|b| *b)).collect();
        assert_eq!(rest, vec![8, 7, 6, 5, 4, 3, 2, 1]);
        assert!(d.pop().is_none());
        assert!(matches!(d.steal(), Stolen::Empty));
    }

    #[test]
    fn deque_overflow_spills_to_reservoir_and_drop_frees_leftovers() {
        let reservoir = Mutex::new(Vec::new());
        let d: Deque<u64> = Deque::new();
        for v in 0..(LOCAL_CAP as u64 + 50) {
            d.push(v, &reservoir);
        }
        assert_eq!(reservoir.lock().unwrap().len(), 50, "overflow spills");
        assert_eq!(d.pop().map(|b| *b), Some(LOCAL_CAP as u64 - 1));
        // The rest is freed by Drop (leak-checked under Miri/asan runs;
        // here we just exercise the path).
        drop(d);
    }

    #[test]
    fn concurrent_owner_and_thieves_conserve_items() {
        // Owner pushes and pops while thieves steal; every pushed value
        // must be obtained exactly once across all parties.
        const N: u64 = 10_000;
        let d: Deque<u64> = Deque::new();
        let reservoir = Mutex::new(Vec::new());
        let taken = Mutex::new(Vec::<u64>::new());
        let stop_flag = AtomicBool::new(false);
        std::thread::scope(|scope| {
            let d = &d;
            let taken = &taken;
            let stop = &stop_flag;
            let thieves: Vec<_> = (0..3)
                .map(|_| {
                    scope.spawn(move || {
                        let mut got = Vec::new();
                        while !stop.load(Ordering::Relaxed) {
                            match d.steal() {
                                Stolen::Taken(b) => got.push(*b),
                                _ => std::hint::spin_loop(),
                            }
                        }
                        // Final drain so nothing is stranded mid-race.
                        loop {
                            match d.steal() {
                                Stolen::Taken(b) => got.push(*b),
                                Stolen::Empty => break,
                                Stolen::Retry => {}
                            }
                        }
                        got
                    })
                })
                .collect();
            let mut got = Vec::new();
            for v in 0..N {
                d.push(v, &reservoir);
                if v % 3 == 0 {
                    if let Some(b) = d.pop() {
                        got.push(*b);
                    }
                }
            }
            while let Some(b) = d.pop() {
                got.push(*b);
            }
            stop.store(true, Ordering::Relaxed);
            taken.lock().unwrap().extend(got);
            for t in thieves {
                taken.lock().unwrap().extend(t.join().unwrap());
            }
        });
        let mut all = taken.into_inner().unwrap();
        all.extend(reservoir.into_inner().unwrap());
        all.sort_unstable();
        assert_eq!(all, (0..N).collect::<Vec<u64>>());
    }

    #[test]
    fn wide_fanout_overflows_locally_and_still_counts_every_state() {
        // One root fans out to more successors than a local deque holds:
        // the overflow must reach the reservoir and every leaf must be
        // expanded exactly once, on any worker count.
        let fanout = LOCAL_CAP as u64 + 500;
        for workers in [1, 2, 4] {
            let visited: ShardedVisited<u64> = ShardedVisited::new(false, workers);
            assert!(visited.insert(fp_of(0), || 0));
            let results = drive(
                vec![0u64],
                workers,
                || 0u64,
                |count, node, ctx| {
                    *count += 1;
                    if node == 0 {
                        for child in 1..=fanout {
                            if visited.insert(fp_of(child), || child) {
                                ctx.push(child);
                            }
                        }
                    }
                },
                |count, _| count,
            );
            assert_eq!(results.iter().sum::<u64>(), fanout + 1, "workers={workers}");
            assert_eq!(visited.len(), fanout as usize + 1);
        }
    }

    #[test]
    fn steals_are_reported_when_one_worker_seeds_all_work() {
        // A single root expanded by one worker produces a deep chain of
        // wide fan-outs; with several workers and one producer, siblings
        // can only ever obtain work by stealing (or from the reservoir).
        // The reports must account for the split.
        let visited: ShardedVisited<u64> = ShardedVisited::new(false, 4);
        assert!(visited.insert(fp_of(1), || 1));
        let reports = drive(
            vec![1u64],
            4,
            || 0u64,
            |count, node, ctx| {
                *count += 1;
                // Burn a little time so thieves have something to race.
                std::hint::black_box((0..50).sum::<u64>());
                for child in [node * 7 + 1, node * 7 + 2, node * 7 + 3] {
                    if child < 100_000 && visited.insert(fp_of(child), || child) {
                        ctx.push(child);
                    }
                }
            },
            |count, report| (count, report.steals),
        );
        let total: u64 = reports.iter().map(|(c, _)| c).sum();
        assert_eq!(total as usize, visited.len());
        // Steal counts are scheduling-dependent; the invariant is that
        // they are *reported* (the sum is meaningful) — on a loaded
        // 1-CPU host every steal may legitimately be zero.
        let steals: u64 = reports.iter().map(|(_, s)| s).sum();
        assert!(steals <= total);
    }

    #[test]
    fn revisits_are_suppressed() {
        let visited: ShardedVisited<u64> = ShardedVisited::new(false, 1);
        assert!(visited.insert(fp_of(7), || 7));
        assert!(!visited.insert(fp_of(7), || 7));
        assert_eq!(visited.len(), 1);
    }

    #[test]
    fn batch_insert_agrees_with_scalar_insert() {
        for workers in [1, 4] {
            let scalar: ShardedVisited<u64> = ShardedVisited::new(true, workers);
            let batched: ShardedVisited<u64> = ShardedVisited::new(true, workers);
            let mut fresh = Vec::new();
            // Two batches with internal and cross-batch duplicates.
            let batches: [&[u64]; 2] = [&[1, 2, 3, 2, 4], &[4, 5, 1, 6]];
            for items in batches {
                let tagged: Vec<(Fingerprint, u64)> =
                    items.iter().map(|&v| (fp_of(v), v)).collect();
                batched.insert_batch(&tagged, |it| it.0, |it| it.1, &mut fresh);
                let scalar_fresh: Vec<bool> = items
                    .iter()
                    .map(|&v| scalar.insert(fp_of(v), || v))
                    .collect();
                assert_eq!(fresh, scalar_fresh, "workers={workers}");
            }
            assert_eq!(batched.len(), scalar.len());
            assert_eq!(batched.len(), 6);
            assert!(batched.bytes() > 0);
        }
    }

    #[test]
    fn batch_insert_handles_empty_batches() {
        let v: ShardedVisited<u64> = ShardedVisited::new(false, 4);
        let mut fresh = vec![true; 3];
        v.insert_batch(
            &[] as &[(Fingerprint, u64)],
            |it| it.0,
            |it| it.1,
            &mut fresh,
        );
        assert!(fresh.is_empty());
        assert!(v.is_empty());
    }

    #[test]
    #[should_panic(expected = "fingerprint collision")]
    fn paranoid_mode_detects_collisions() {
        let visited: ShardedVisited<u64> = ShardedVisited::new(true, 1);
        assert!(visited.insert(fp_of(1), || 1));
        // Same fingerprint, different exact key: must panic.
        visited.insert(fp_of(1), || 2);
    }

    #[test]
    #[should_panic(expected = "fingerprint collision")]
    fn paranoid_mode_detects_collisions_in_batches() {
        let visited: ShardedVisited<u64> = ShardedVisited::new(true, 1);
        let mut fresh = Vec::new();
        // Same fingerprint, different exact keys, same batch.
        let items = [(fp_of(1), 1u64), (fp_of(1), 2u64)];
        visited.insert_batch(&items, |it| it.0, |it| it.1, &mut fresh);
    }

    #[test]
    fn stop_cancels_parallel_search() {
        let visited: ShardedVisited<u64> = ShardedVisited::new(false, 4);
        let results = drive(
            vec![1u64],
            4,
            || 0u64,
            |count, node, ctx| {
                *count += 1;
                if *count > 10 {
                    ctx.stop();
                    return;
                }
                for child in [node * 2, node * 2 + 1] {
                    if visited.insert(fp_of(child), || child) {
                        ctx.push(child);
                    }
                }
            },
            |count, _| count,
        );
        // Unbounded tree: only cancellation lets this return.
        assert!(results.iter().sum::<u64>() > 0);
    }

    #[test]
    fn effective_workers_resolves_zero() {
        assert!(effective_workers(0) >= 1);
        assert_eq!(effective_workers(3), 3);
    }

    #[test]
    fn worker_panic_surfaces_payload_and_worker_index() {
        // A panicking step (e.g. a paranoid-mode collision assert) must
        // cancel the pool and propagate — naming the failing worker and
        // carrying the original payload — not strand parked siblings or
        // die with an anonymous "worker panicked".
        let err = std::panic::catch_unwind(|| {
            drive(
                vec![1u64, 2, 3, 4],
                4,
                || (),
                |_, node, ctx| {
                    if node == 3 {
                        panic!("injected step failure");
                    }
                    ctx.push(node + 4);
                },
                |(), _| (),
            )
        })
        .expect_err("a worker panicked; drive must re-raise");
        let msg = panic_message(err.as_ref());
        assert!(msg.contains("exploration worker"), "{msg}");
        assert!(msg.contains("of 4 panicked"), "{msg}");
        assert!(msg.contains("injected step failure"), "{msg}");
    }

    #[test]
    fn visited_set_recovers_from_poisoned_shards() {
        // Paranoid-mode collision asserts panic while holding a shard
        // lock; subsequent inserts on that shard must keep working (the
        // map itself is still consistent — the panic fires between map
        // operations).
        let visited: std::sync::Arc<ShardedVisited<u64>> =
            std::sync::Arc::new(ShardedVisited::new(true, 1));
        assert!(visited.insert(fp_of(1), || 1));
        let v = std::sync::Arc::clone(&visited);
        let poisoner = std::thread::spawn(move || {
            v.insert(fp_of(1), || 2); // collision: panics holding the lock
        });
        assert!(poisoner.join().is_err(), "collision assert must fire");
        // The single shard is now poisoned; inserts still succeed.
        assert!(visited.insert(fp_of(2), || 2));
        assert!(!visited.insert(fp_of(2), || 2));
        assert_eq!(visited.len(), 2);
    }

    #[test]
    fn panic_message_renders_common_payloads() {
        let err = std::panic::catch_unwind(|| panic!("plain {}", "text")).unwrap_err();
        assert_eq!(panic_message(err.as_ref()), "plain text");
        let err = std::panic::catch_unwind(|| std::panic::panic_any(42u32)).unwrap_err();
        assert_eq!(panic_message(err.as_ref()), "<non-string panic payload>");
    }
}
