//! A minimal, offline stand-in for the [`criterion`] benchmarking crate.
//!
//! The build environment cannot fetch crates from a registry, so the
//! workspace points the `criterion` dependency at this shim. It implements
//! just the subset of the API the `crates/bench/benches/*.rs` files use —
//! [`Criterion::bench_function`], [`Criterion::benchmark_group`],
//! [`Bencher::iter`], and the [`criterion_group!`]/[`criterion_main!`]
//! macros — with a simple best-of-N wall-clock measurement instead of
//! criterion's statistical machinery.
//!
//! Knobs (environment variables):
//!
//! * `BENCH_SAMPLES` — measurement samples per benchmark (default 5;
//!   the configured `sample_size` is capped to this).
//! * `BENCH_FILTER` — substring filter on benchmark ids.
//!
//! [`criterion`]: https://docs.rs/criterion

use std::time::{Duration, Instant};

/// Re-export of [`std::hint::black_box`], mirroring criterion's helper.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

fn env_samples() -> usize {
    std::env::var("BENCH_SAMPLES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(5)
}

fn env_filter() -> Option<String> {
    std::env::var("BENCH_FILTER").ok().filter(|s| !s.is_empty())
}

/// The benchmark driver handed to `criterion_group!` functions.
#[derive(Debug)]
pub struct Criterion {
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion {
            filter: env_filter(),
        }
    }
}

impl Criterion {
    fn skip(&self, id: &str) -> bool {
        match &self.filter {
            Some(f) => !id.contains(f.as_str()),
            None => false,
        }
    }

    /// Run a single benchmark.
    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Criterion
    where
        F: FnMut(&mut Bencher),
    {
        run_one(self, id, env_samples(), f);
        self
    }

    /// Open a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: env_samples(),
        }
    }
}

fn run_one<F>(c: &Criterion, id: &str, samples: usize, mut f: F)
where
    F: FnMut(&mut Bencher),
{
    if c.skip(id) {
        return;
    }
    let mut best: Option<Duration> = None;
    let samples = samples.clamp(1, env_samples().max(1));
    for _ in 0..samples {
        let mut b = Bencher {
            elapsed: Duration::ZERO,
            iters: 0,
        };
        f(&mut b);
        if b.iters > 0 {
            let per_iter = b.elapsed / b.iters;
            best = Some(best.map_or(per_iter, |p| p.min(per_iter)));
        }
    }
    match best {
        Some(d) => println!("bench {id:<50} {:>12.3} ms/iter", d.as_secs_f64() * 1e3),
        None => println!("bench {id:<50} (no samples)"),
    }
}

/// A group of related benchmarks (criterion's `BenchmarkGroup`).
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Set the number of measurement samples (capped by `BENCH_SAMPLES`).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    /// Run one benchmark within the group.
    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{id}", self.name);
        let samples = self.sample_size;
        run_one(self.criterion, &full, samples, f);
        self
    }

    /// Close the group (no-op in the shim).
    pub fn finish(self) {}
}

/// The per-benchmark timing handle (criterion's `Bencher`).
pub struct Bencher {
    elapsed: Duration,
    iters: u32,
}

impl Bencher {
    /// Time the routine. The shim runs it once per sample (the routines in
    /// this workspace are exhaustive explorations, far above timer
    /// resolution).
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        let start = Instant::now();
        black_box(routine());
        self.elapsed += start.elapsed();
        self.iters += 1;
    }
}

/// Declare a group-runner function over benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Generate a `main` that runs the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_routine() {
        let mut c = Criterion::default();
        let mut ran = 0;
        c.bench_function("smoke", |b| b.iter(|| ran += 1));
        assert!(ran > 0);
    }

    #[test]
    fn group_api_compiles_and_runs() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(2);
        group.bench_function("inner", |b| b.iter(|| 40 + 2));
        group.finish();
    }
}
