//! A minimal, offline stand-in for the [`proptest`] property-testing crate.
//!
//! The build environment cannot fetch crates from a registry, so the
//! workspace points the `proptest` dev-dependency at this shim. It
//! implements the subset used by `tests/theorems.rs`:
//!
//! * the [`Strategy`] trait with [`Strategy::prop_map`], implemented for
//!   integer ranges, tuples of strategies, [`Just`], and [`any`];
//! * [`collection::vec`] and the [`prop_oneof!`] macro;
//! * the [`proptest!`] macro with `#![proptest_config(..)]`, and the
//!   [`prop_assert!`]/[`prop_assert_eq!`] assertion macros.
//!
//! Sampling is a deterministic xorshift PRNG (seeded per test from the
//! test name, overridable via `PROPTEST_SEED`), so failures reproduce.
//! There is no shrinking: a failing case panics with the sampled inputs
//! already interpolated into the assertion message where the test
//! provides one. `PROPTEST_CASES` overrides the configured case count.
//!
//! [`proptest`]: https://docs.rs/proptest

use std::ops::Range;

/// Deterministic test-case RNG (xorshift64*).
#[derive(Clone, Debug)]
pub struct TestRng(u64);

impl TestRng {
    /// Seed a generator; a zero seed is remapped to a fixed constant.
    pub fn new(seed: u64) -> TestRng {
        TestRng(if seed == 0 {
            0x9E37_79B9_7F4A_7C15
        } else {
            seed
        })
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Uniform value in `[0, bound)`; `bound` must be non-zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        self.next_u64() % bound
    }
}

/// A value generator (the proptest `Strategy` trait, minus shrinking).
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Sample one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Map generated values through `f`.
    fn prop_map<T, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> T,
    {
        Map { inner: self, f }
    }
}

/// The result of [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, T> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> T,
{
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        (self.f)(self.inner.sample(rng))
    }
}

/// Always generates a clone of the given value.
#[derive(Clone, Debug)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let span = (self.end - self.start) as u64;
                assert!(span > 0, "empty range strategy");
                self.start + rng.below(span) as $t
            }
        }
    )*};
}

int_range_strategy!(i64, u64, i32, u32, usize);

macro_rules! tuple_strategy {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
}

/// Types with a canonical "any value" strategy (proptest's `Arbitrary`).
pub trait Arbitrary: Sized {
    /// Sample an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for u64 {
    fn arbitrary(rng: &mut TestRng) -> u64 {
        rng.next_u64()
    }
}

impl Arbitrary for u32 {
    fn arbitrary(rng: &mut TestRng) -> u32 {
        rng.next_u64() as u32
    }
}

impl Arbitrary for i64 {
    fn arbitrary(rng: &mut TestRng) -> i64 {
        rng.next_u64() as i64
    }
}

impl Arbitrary for usize {
    fn arbitrary(rng: &mut TestRng) -> usize {
        rng.next_u64() as usize
    }
}

/// Strategy returned by [`any`].
#[derive(Clone, Copy, Debug, Default)]
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The canonical strategy for `T` (proptest's `any::<T>()`).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

/// A uniform choice among boxed strategies (built by [`prop_oneof!`]).
pub struct OneOf<V> {
    arms: Vec<Box<dyn Strategy<Value = V>>>,
}

impl<V> OneOf<V> {
    /// Build from the given arms (at least one).
    pub fn new(arms: Vec<Box<dyn Strategy<Value = V>>>) -> OneOf<V> {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        OneOf { arms }
    }
}

impl<V> Strategy for OneOf<V> {
    type Value = V;
    fn sample(&self, rng: &mut TestRng) -> V {
        let i = rng.below(self.arms.len() as u64) as usize;
        self.arms[i].sample(rng)
    }
}

/// Collection strategies (proptest's `proptest::collection`).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Strategy for vectors with lengths drawn from `len`.
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    /// Generate `Vec`s of `element` values with a length in `len`.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.len.sample(rng);
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Per-`proptest!` block configuration.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of cases to run per property.
    pub cases: u32,
    /// Accepted for API compatibility; unused by the shim (no shrinking).
    pub max_shrink_iters: u32,
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig {
            cases: 256,
            max_shrink_iters: 0,
        }
    }
}

impl ProptestConfig {
    /// The effective case count: `PROPTEST_CASES` overrides the config.
    pub fn effective_cases(&self) -> u32 {
        std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(self.cases)
    }
}

/// Seed for a named test: `PROPTEST_SEED` override, else an FNV-1a hash
/// of the test name (stable across runs).
pub fn seed_for(test_name: &str) -> u64 {
    if let Some(s) = std::env::var("PROPTEST_SEED")
        .ok()
        .and_then(|v| v.parse().ok())
    {
        return s;
    }
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

/// Everything a test file needs (`use proptest::prelude::*`).
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_oneof, proptest, Any, Arbitrary, Just,
        ProptestConfig, Strategy, TestRng,
    };
}

/// Property assertion: like `assert!`, reported per sampled case.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond);
    };
    ($cond:expr, $($fmt:tt)*) => {
        assert!($cond, $($fmt)*);
    };
}

/// Property equality assertion: like `assert_eq!`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {
        assert_eq!($a, $b);
    };
    ($a:expr, $b:expr, $($fmt:tt)*) => {
        assert_eq!($a, $b, $($fmt)*);
    };
}

/// Uniform choice among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::OneOf::new(vec![
            $(Box::new($arm) as Box<dyn $crate::Strategy<Value = _>>),+
        ])
    };
}

/// Declare property tests. Each `name(arg in strategy, ..)` item becomes a
/// `#[test]` function that samples the strategies `cases` times with a
/// deterministic RNG and runs the body.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Internal item muncher for [`proptest!`]; not part of the public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let cases = config.effective_cases();
            let mut rng = $crate::TestRng::new($crate::seed_for(stringify!($name)));
            for _case in 0..cases {
                $(let $arg = $crate::Strategy::sample(&$strat, &mut rng);)*
                $body
            }
        }
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;

    #[test]
    fn ranges_sample_within_bounds() {
        let mut rng = TestRng::new(1);
        for _ in 0..100 {
            let v = (3..7i64).sample(&mut rng);
            assert!((3i64..7).contains(&v));
        }
    }

    #[test]
    fn oneof_and_map_compose() {
        let s = prop_oneof![(0..2i64).prop_map(|v| v * 10), Just(99i64),];
        let mut rng = TestRng::new(2);
        for _ in 0..50 {
            let v: i64 = s.sample(&mut rng);
            assert!([0i64, 10, 99].contains(&v));
        }
    }

    #[test]
    fn vec_strategy_respects_length_range() {
        let s = collection::vec(0..5i64, 1..4);
        let mut rng = TestRng::new(3);
        for _ in 0..50 {
            let v = s.sample(&mut rng);
            assert!((1usize..4).contains(&v.len()));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 8, ..ProptestConfig::default() })]

        /// The macro itself: tuples, any, and assertions.
        #[test]
        fn macro_generates_cases(pair in (0..4i64, 1..3i64), flag in any::<bool>()) {
            prop_assert!(pair.0 < 4 && pair.1 >= 1);
            prop_assert_eq!(i64::from(flag) * 2, if flag { 2 } else { 0 }, "on {:?}", pair);
        }
    }
}
