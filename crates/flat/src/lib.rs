//! **Flat-lite**: a reimplementation of the essential structure of the
//! Flat operational model (Pulte, Flur, et al. — the baseline the paper's
//! evaluation compares against).
//!
//! Flat executes each instruction in *multiple steps*, *out of order*, and
//! with *explicit branch speculation* that sometimes has to be squashed —
//! precisely the microarchitectural complexity that Promising-ARM/RISC-V
//! removes. This crate reproduces that structure over the same calculus:
//!
//! * instructions become [`Instance`]s fetched along a speculative path;
//! * loads *satisfy* (possibly forwarding from unpropagated stores, and
//!   before program-order-earlier instructions have executed);
//! * stores *propagate* to a flat list memory out of order;
//! * branches resolve and mis-speculation discards younger instances.
//!
//! The exhaustive explorer ([`explore_flat`]) interleaves every such
//! micro-step across threads, which is why its search space (and run time)
//! explodes compared to the promise-first Promising search — the effect
//! Tables 2 and 3 of the paper quantify.
//!
//! See DESIGN.md for the two documented conservative simplifications
//! relative to the original Flat (restart-free load binding; late
//! store-exclusive success binding).
//!
//! ```
//! use promising_core::{parse_program, Config, Reg, Val};
//! use promising_flat::{explore_flat, FlatMachine};
//! use std::sync::Arc;
//!
//! let (program, _) = parse_program(
//!     "store(x, 1)\ndmb.sy\nstore(y, 1)\n---\nr1 = load(y)\nr2 = load(x)",
//! )?;
//! let m = FlatMachine::new(Arc::new(program), Config::arm());
//! let result = explore_flat(&m);
//! // out-of-order satisfaction exhibits the weak MP outcome
//! assert!(result
//!     .outcomes
//!     .iter()
//!     .any(|o| o.reg(1, Reg(1)) == Val(1) && o.reg(1, Reg(2)) == Val(0)));
//! # Ok::<(), promising_core::ParseError>(())
//! ```

#![warn(missing_docs)]

pub mod explore;
pub mod instance;
pub mod machine;

pub use explore::{explore_flat, explore_flat_budget, FlatExploration, FlatModel, FlatStats};
pub use instance::{InstOp, InstState, Instance, Src};
pub use machine::{FlatMachine, FlatStateKey, FlatThread, FlatTransition};
