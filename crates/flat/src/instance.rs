//! Instruction instances of the Flat-lite machine.
//!
//! Unlike Promising's single-step instructions, a Flat instruction is an
//! *instance* that is fetched (possibly speculatively), executes in several
//! steps (address/data resolution, satisfy or propagate), and is finally
//! bound. This mirrors the abstract-microarchitectural structure of the
//! Flat model of Pulte et al. [POPL 2018] that the paper benchmarks
//! against.

use promising_core::expr::Expr;
use promising_core::ids::{Reg, Timestamp, Val};
use promising_core::stmt::{Fence, ReadKind, RmwOp, StmtId, WriteKind};

/// What an instance does.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum InstOp {
    /// Register assignment.
    Assign {
        /// Destination.
        reg: Reg,
        /// Source expression.
        expr: Expr,
    },
    /// A load.
    Load {
        /// Destination register.
        reg: Reg,
        /// Address expression.
        addr: Expr,
        /// Acquire strength.
        rk: ReadKind,
        /// Load exclusive?
        exclusive: bool,
    },
    /// A store.
    Store {
        /// Success register (meaningful for exclusives).
        succ: Reg,
        /// Address expression.
        addr: Expr,
        /// Data expression.
        data: Expr,
        /// Release strength.
        wk: WriteKind,
        /// Store exclusive?
        exclusive: bool,
    },
    /// A single-instruction atomic RMW: reads the coherence-latest write
    /// and appends the updated value in one execution step (trivially
    /// atomic). Conservative like the store-exclusive handling: it never
    /// forwards from unpropagated stores and binds both the old value and
    /// the success flag only at execution.
    Rmw {
        /// The update performed.
        op: RmwOp,
        /// Old-value destination register.
        dst: Reg,
        /// Success-flag register.
        succ: Reg,
        /// Address expression.
        addr: Expr,
        /// CAS only: expected value.
        expected: Option<Expr>,
        /// Stored value / fetch-op operand.
        operand: Expr,
        /// Acquire strength of the read half.
        rk: ReadKind,
        /// Release strength of the write half.
        wk: WriteKind,
    },
    /// A fence.
    Fence(Fence),
    /// An ARM `isb`.
    Isb,
    /// A (conditional or loop) branch, fetched with a speculation guess.
    Branch {
        /// The branch condition.
        cond: Expr,
        /// The guessed direction.
        guess: bool,
        /// The fetch continuation for the direction *not* guessed, for
        /// squashing on mis-speculation.
        alt_cont: Vec<StmtId>,
    },
}

/// Where a satisfied load got its value.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Src {
    /// From memory at the given timestamp.
    Memory(Timestamp),
    /// Forwarded from the po-earlier store instance at this index.
    Forward(usize),
}

/// The lifecycle state of an instance.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum InstState {
    /// Fetched, nothing done yet.
    Pending,
    /// Assignment executed.
    Done {
        /// Computed value.
        val: Val,
    },
    /// Load satisfied (value bound; never restarted in Flat-lite).
    Satisfied {
        /// Source of the value.
        src: Src,
        /// The value read.
        val: Val,
    },
    /// Store propagated to memory.
    Propagated {
        /// Timestamp in memory.
        ts: Timestamp,
    },
    /// Store exclusive failed.
    Failed,
    /// RMW executed: read `old` at `tr`, and (unless a CAS compare
    /// failed) wrote at `wrote`.
    RmwDone {
        /// Timestamp the read half read from.
        tr: Timestamp,
        /// The old value read.
        old: Val,
        /// Timestamp of the write (`None`: CAS compare failure, nothing
        /// written).
        wrote: Option<Timestamp>,
    },
    /// Fence or `isb` committed.
    Committed,
    /// Branch resolved.
    Resolved {
        /// Actual direction.
        taken: bool,
    },
}

/// One instruction instance.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct Instance {
    /// The statement this instance was fetched from.
    pub stmt: StmtId,
    /// Its operation.
    pub op: InstOp,
    /// Its lifecycle state.
    pub state: InstState,
}

impl Instance {
    /// Fresh pending instance.
    pub fn new(stmt: StmtId, op: InstOp) -> Instance {
        Instance {
            stmt,
            op,
            state: InstState::Pending,
        }
    }

    /// Whether the instance has reached a final state (its effects are
    /// bound and it can never change again).
    pub fn is_bound(&self) -> bool {
        !matches!(self.state, InstState::Pending)
    }

    /// The value this instance wrote to `r`, if it writes `r` and the
    /// value is available yet.
    pub fn written_reg(&self, r: Reg) -> Option<Option<Val>> {
        match &self.op {
            InstOp::Assign { reg, .. } if *reg == r => Some(match self.state {
                InstState::Done { val } => Some(val),
                _ => None,
            }),
            InstOp::Load { reg, .. } if *reg == r => Some(match self.state {
                InstState::Satisfied { val, .. } => Some(val),
                _ => None,
            }),
            InstOp::Store {
                succ, exclusive, ..
            } if *exclusive && *succ == r => Some(match self.state {
                // The success value is bound when the store exclusive
                // propagates (success) or fails. This is the conservative
                // reading of ARM's success dependency (see DESIGN.md).
                InstState::Propagated { .. } => Some(Val::SUCCESS),
                InstState::Failed => Some(Val::FAIL),
                _ => None,
            }),
            InstOp::Rmw { dst, .. } if *dst == r => Some(match self.state {
                InstState::RmwDone { old, .. } => Some(old),
                _ => None,
            }),
            InstOp::Rmw { succ, .. } if *succ == r => Some(match self.state {
                InstState::RmwDone { wrote, .. } => Some(if wrote.is_some() {
                    Val::SUCCESS
                } else {
                    Val::FAIL
                }),
                _ => None,
            }),
            _ => None,
        }
    }

    /// Is this a load instance (RMWs count: they read)?
    pub fn is_load(&self) -> bool {
        matches!(self.op, InstOp::Load { .. } | InstOp::Rmw { .. })
    }

    /// Is this a store instance (RMWs count: they may write)?
    pub fn is_store(&self) -> bool {
        matches!(self.op, InstOp::Store { .. } | InstOp::Rmw { .. })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use promising_core::ids::Reg;

    #[test]
    fn pending_instances_are_unbound() {
        let i = Instance::new(
            StmtId(0),
            InstOp::Assign {
                reg: Reg(0),
                expr: Expr::val(1),
            },
        );
        assert!(!i.is_bound());
    }

    #[test]
    fn written_reg_distinguishes_not_mine_and_not_ready() {
        let mut i = Instance::new(
            StmtId(0),
            InstOp::Assign {
                reg: Reg(0),
                expr: Expr::val(1),
            },
        );
        assert_eq!(i.written_reg(Reg(1)), None); // not my register
        assert_eq!(i.written_reg(Reg(0)), Some(None)); // mine, not ready
        i.state = InstState::Done { val: Val(1) };
        assert_eq!(i.written_reg(Reg(0)), Some(Some(Val(1))));
    }

    #[test]
    fn exclusive_store_success_register_binds_at_propagate_or_fail() {
        let mut i = Instance::new(
            StmtId(0),
            InstOp::Store {
                succ: Reg(2),
                addr: Expr::val(0),
                data: Expr::val(1),
                wk: WriteKind::Plain,
                exclusive: true,
            },
        );
        assert_eq!(i.written_reg(Reg(2)), Some(None));
        i.state = InstState::Failed;
        assert_eq!(i.written_reg(Reg(2)), Some(Some(Val::FAIL)));
        i.state = InstState::Propagated { ts: Timestamp(1) };
        assert_eq!(i.written_reg(Reg(2)), Some(Some(Val::SUCCESS)));
    }

    #[test]
    fn non_exclusive_store_does_not_write_success() {
        let i = Instance::new(
            StmtId(0),
            InstOp::Store {
                succ: Reg(2),
                addr: Expr::val(0),
                data: Expr::val(1),
                wk: WriteKind::Plain,
                exclusive: false,
            },
        );
        assert_eq!(i.written_reg(Reg(2)), None);
    }
}
