//! Instruction instances of the Flat-lite machine.
//!
//! Unlike Promising's single-step instructions, a Flat instruction is an
//! *instance* that is fetched (possibly speculatively), executes in several
//! steps (address/data resolution, satisfy or propagate), and is finally
//! bound. This mirrors the abstract-microarchitectural structure of the
//! Flat model of Pulte et al. [POPL 2018] that the paper benchmarks
//! against.

use promising_core::expr::Expr;
use promising_core::ids::{Reg, Timestamp, Val};
use promising_core::stmt::{Fence, ReadKind, RmwOp, StmtId, WriteKind};

/// What an instance does.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum InstOp {
    /// Register assignment.
    Assign {
        /// Destination.
        reg: Reg,
        /// Source expression.
        expr: Expr,
    },
    /// A load.
    Load {
        /// Destination register.
        reg: Reg,
        /// Address expression.
        addr: Expr,
        /// Acquire strength.
        rk: ReadKind,
        /// Load exclusive?
        exclusive: bool,
    },
    /// A store.
    Store {
        /// Success register (meaningful for exclusives).
        succ: Reg,
        /// Address expression.
        addr: Expr,
        /// Data expression.
        data: Expr,
        /// Release strength.
        wk: WriteKind,
        /// Store exclusive?
        exclusive: bool,
    },
    /// A single-instruction atomic RMW, executed in two phases: a
    /// read-bind step binds the old value from the coherence-latest
    /// write (satisfying the acquire strength of the read half), and a
    /// later write-propagate step appends the updated value — guarded
    /// by the exclusive-pairing invariant that no other thread's write
    /// to the location lands in between. Conservative like the
    /// store-exclusive handling: it never forwards from unpropagated
    /// stores, and the success flag binds only when the write half
    /// resolves.
    Rmw {
        /// The update performed.
        op: RmwOp,
        /// Old-value destination register.
        dst: Reg,
        /// Success-flag register.
        succ: Reg,
        /// Address expression.
        addr: Expr,
        /// CAS only: expected value.
        expected: Option<Expr>,
        /// Stored value / fetch-op operand.
        operand: Expr,
        /// Acquire strength of the read half.
        rk: ReadKind,
        /// Release strength of the write half.
        wk: WriteKind,
    },
    /// A fence.
    Fence(Fence),
    /// An ARM `isb`.
    Isb,
    /// A (conditional or loop) branch, fetched with a speculation guess.
    Branch {
        /// The branch condition.
        cond: Expr,
        /// The guessed direction.
        guess: bool,
        /// The fetch continuation for the direction *not* guessed, for
        /// squashing on mis-speculation.
        alt_cont: Vec<StmtId>,
    },
}

/// Where a satisfied load got its value.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Src {
    /// From memory at the given timestamp.
    Memory(Timestamp),
    /// Forwarded from the po-earlier store instance at this index.
    Forward(usize),
}

/// The lifecycle state of an instance.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum InstState {
    /// Fetched, nothing done yet.
    Pending,
    /// Assignment executed.
    Done {
        /// Computed value.
        val: Val,
    },
    /// Load satisfied (value bound; never restarted in Flat-lite).
    Satisfied {
        /// Source of the value.
        src: Src,
        /// The value read.
        val: Val,
    },
    /// Store propagated to memory.
    Propagated {
        /// Timestamp in memory.
        ts: Timestamp,
    },
    /// Store exclusive failed.
    Failed,
    /// RMW read half bound: read `old` at `tr`, write half still
    /// pending. The read's acquire strength is satisfied here, so
    /// po-later loads blocked only on the acquire may now bind — the
    /// `rmw` edge of the axiomatic model runs read→write, the wrong
    /// direction to order anything po-later after the *write*.
    RmwBound {
        /// Timestamp the read half read from.
        tr: Timestamp,
        /// The old value read.
        old: Val,
    },
    /// RMW retired: read `old` at `tr`, and (unless a CAS compare
    /// failed) wrote at `wrote`.
    RmwDone {
        /// Timestamp the read half read from.
        tr: Timestamp,
        /// The old value read.
        old: Val,
        /// Timestamp of the write (`None`: CAS compare failure, nothing
        /// written).
        wrote: Option<Timestamp>,
    },
    /// Fence or `isb` committed.
    Committed,
    /// Branch resolved.
    Resolved {
        /// Actual direction.
        taken: bool,
    },
}

/// One instruction instance.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct Instance {
    /// The statement this instance was fetched from.
    pub stmt: StmtId,
    /// Its operation.
    pub op: InstOp,
    /// Its lifecycle state.
    pub state: InstState,
}

impl Instance {
    /// Fresh pending instance.
    pub fn new(stmt: StmtId, op: InstOp) -> Instance {
        Instance {
            stmt,
            op,
            state: InstState::Pending,
        }
    }

    /// Whether the instance has reached a final state (its effects are
    /// bound and it can never change again). A bound-but-unpropagated
    /// RMW is *not* final: its write half is still a pending append.
    pub fn is_bound(&self) -> bool {
        !matches!(self.state, InstState::Pending | InstState::RmwBound { .. })
    }

    /// Whether the instance's *read half* is bound. For loads this is
    /// [`is_bound`](Self::is_bound); for RMWs the read binds at
    /// `RmwBound`, before the write half propagates. Instances without
    /// a read half are vacuously satisfied.
    pub fn read_satisfied(&self) -> bool {
        match &self.op {
            InstOp::Load { .. } => self.is_bound(),
            InstOp::Rmw { .. } => matches!(
                self.state,
                InstState::RmwBound { .. } | InstState::RmwDone { .. }
            ),
            _ => true,
        }
    }

    /// The value this instance wrote to `r`, if it writes `r` and the
    /// value is available yet.
    pub fn written_reg(&self, r: Reg) -> Option<Option<Val>> {
        match &self.op {
            InstOp::Assign { reg, .. } if *reg == r => Some(match self.state {
                InstState::Done { val } => Some(val),
                _ => None,
            }),
            InstOp::Load { reg, .. } if *reg == r => Some(match self.state {
                InstState::Satisfied { val, .. } => Some(val),
                _ => None,
            }),
            InstOp::Store {
                succ, exclusive, ..
            } if *exclusive && *succ == r => Some(match self.state {
                // The success value is bound when the store exclusive
                // propagates (success) or fails. This is the conservative
                // reading of ARM's success dependency (see DESIGN.md).
                InstState::Propagated { .. } => Some(Val::SUCCESS),
                InstState::Failed => Some(Val::FAIL),
                _ => None,
            }),
            InstOp::Rmw { dst, .. } if *dst == r => Some(match self.state {
                // The old value is visible as soon as the read half
                // binds — po-later dependents need not wait for the
                // write to land.
                InstState::RmwBound { old, .. } | InstState::RmwDone { old, .. } => Some(old),
                _ => None,
            }),
            InstOp::Rmw { succ, .. } if *succ == r => Some(match self.state {
                InstState::RmwDone { wrote, .. } => Some(if wrote.is_some() {
                    Val::SUCCESS
                } else {
                    Val::FAIL
                }),
                _ => None,
            }),
            _ => None,
        }
    }

    /// Is this a load instance (RMWs count: they read)?
    pub fn is_load(&self) -> bool {
        matches!(self.op, InstOp::Load { .. } | InstOp::Rmw { .. })
    }

    /// Is this a store instance (RMWs count: they may write)?
    pub fn is_store(&self) -> bool {
        matches!(self.op, InstOp::Store { .. } | InstOp::Rmw { .. })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use promising_core::ids::Reg;

    #[test]
    fn pending_instances_are_unbound() {
        let i = Instance::new(
            StmtId(0),
            InstOp::Assign {
                reg: Reg(0),
                expr: Expr::val(1),
            },
        );
        assert!(!i.is_bound());
    }

    #[test]
    fn written_reg_distinguishes_not_mine_and_not_ready() {
        let mut i = Instance::new(
            StmtId(0),
            InstOp::Assign {
                reg: Reg(0),
                expr: Expr::val(1),
            },
        );
        assert_eq!(i.written_reg(Reg(1)), None); // not my register
        assert_eq!(i.written_reg(Reg(0)), Some(None)); // mine, not ready
        i.state = InstState::Done { val: Val(1) };
        assert_eq!(i.written_reg(Reg(0)), Some(Some(Val(1))));
    }

    #[test]
    fn exclusive_store_success_register_binds_at_propagate_or_fail() {
        let mut i = Instance::new(
            StmtId(0),
            InstOp::Store {
                succ: Reg(2),
                addr: Expr::val(0),
                data: Expr::val(1),
                wk: WriteKind::Plain,
                exclusive: true,
            },
        );
        assert_eq!(i.written_reg(Reg(2)), Some(None));
        i.state = InstState::Failed;
        assert_eq!(i.written_reg(Reg(2)), Some(Some(Val::FAIL)));
        i.state = InstState::Propagated { ts: Timestamp(1) };
        assert_eq!(i.written_reg(Reg(2)), Some(Some(Val::SUCCESS)));
    }

    #[test]
    fn rmw_old_value_binds_at_read_half_success_at_write_half() {
        let mut i = Instance::new(
            StmtId(0),
            InstOp::Rmw {
                op: RmwOp::FetchAdd,
                dst: Reg(1),
                succ: Reg(2),
                addr: Expr::val(0),
                expected: None,
                operand: Expr::val(1),
                rk: ReadKind::Acquire,
                wk: WriteKind::Plain,
            },
        );
        assert!(!i.read_satisfied());
        i.state = InstState::RmwBound {
            tr: Timestamp(0),
            old: Val(7),
        };
        // Read half bound: old value visible, success still pending,
        // and the instance as a whole is not final.
        assert!(i.read_satisfied());
        assert!(!i.is_bound());
        assert_eq!(i.written_reg(Reg(1)), Some(Some(Val(7))));
        assert_eq!(i.written_reg(Reg(2)), Some(None));
        i.state = InstState::RmwDone {
            tr: Timestamp(0),
            old: Val(7),
            wrote: Some(Timestamp(1)),
        };
        assert!(i.is_bound());
        assert_eq!(i.written_reg(Reg(2)), Some(Some(Val::SUCCESS)));
    }

    #[test]
    fn non_exclusive_store_does_not_write_success() {
        let i = Instance::new(
            StmtId(0),
            InstOp::Store {
                succ: Reg(2),
                addr: Expr::val(0),
                data: Expr::val(1),
                wk: WriteKind::Plain,
                exclusive: false,
            },
        );
        assert_eq!(i.written_reg(Reg(2)), None);
    }
}
