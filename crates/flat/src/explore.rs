//! Exhaustive exploration for the Flat-lite baseline: plain interleaving
//! search over the nondeterministic transitions with visited-state
//! deduplication — the cost profile Tables 2/3 of the paper measure
//! against.

use crate::machine::{FlatMachine, FlatStateKey};
use promising_core::Outcome;
use std::collections::{BTreeSet, HashSet};
use std::time::{Duration, Instant};

/// Counters from a Flat exploration.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct FlatStats {
    /// Distinct states visited.
    pub states: u64,
    /// Transitions applied.
    pub transitions: u64,
    /// Traces that hit the loop bound.
    pub bound_hits: u64,
    /// Unfinished states with no enabled transition.
    pub deadlocks: u64,
    /// Wall-clock duration.
    pub duration: Duration,
    /// Whether the search stopped early on the state budget.
    pub truncated: bool,
}

/// Result of a Flat exploration.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct FlatExploration {
    /// Outcomes of all complete executions.
    pub outcomes: BTreeSet<Outcome>,
    /// Search statistics.
    pub stats: FlatStats,
}

/// Exhaustively explore all interleavings of `machine`.
pub fn explore_flat(machine: &FlatMachine) -> FlatExploration {
    explore_flat_bounded(machine, u64::MAX)
}

/// Like [`explore_flat`] but giving up (with `stats.truncated`) after
/// visiting `max_states` states — the "out of time" guard used by the
/// benchmark tables.
pub fn explore_flat_bounded(machine: &FlatMachine, max_states: u64) -> FlatExploration {
    explore_flat_deadline(machine, max_states, None)
}

/// Fully bounded exploration: state budget and wall-clock deadline.
pub fn explore_flat_deadline(
    machine: &FlatMachine,
    max_states: u64,
    deadline: Option<Duration>,
) -> FlatExploration {
    let start = Instant::now();
    let mut stats = FlatStats::default();
    let mut outcomes = BTreeSet::new();
    let mut visited: HashSet<FlatStateKey> = HashSet::new();
    let mut stack: Vec<FlatMachine> = Vec::new();

    visited.insert(machine.state_key());
    stack.push(machine.clone());

    while let Some(m) = stack.pop() {
        stats.states += 1;
        if stats.states > max_states {
            stats.truncated = true;
            break;
        }
        if let Some(d) = deadline {
            if start.elapsed() > d {
                stats.truncated = true;
                break;
            }
        }
        if m.terminated() {
            outcomes.insert(m.outcome());
            continue;
        }
        if m.any_stuck() {
            stats.bound_hits += 1;
            continue;
        }
        let transitions = m.enabled();
        if transitions.is_empty() {
            stats.deadlocks += 1;
            continue;
        }
        for tr in transitions {
            let mut next = m.clone();
            next.apply(&tr);
            stats.transitions += 1;
            if visited.insert(next.state_key()) {
                stack.push(next);
            }
        }
    }

    stats.duration = start.elapsed();
    FlatExploration { outcomes, stats }
}

#[cfg(test)]
mod tests {
    use super::*;
    use promising_core::{CodeBuilder, Config, Expr, Program, Reg};
    use std::collections::BTreeSet;
    use std::sync::Arc;

    fn run(program: Program) -> FlatExploration {
        let m = FlatMachine::new(Arc::new(program), Config::arm());
        explore_flat(&m)
    }

    fn mp(fenced_reader: bool) -> Program {
        let mut b = CodeBuilder::new();
        let s1 = b.store(Expr::val(0), Expr::val(37));
        let f = b.dmb_sy();
        let s2 = b.store(Expr::val(1), Expr::val(42));
        let t1 = b.finish_seq(&[s1, f, s2]);
        let mut b = CodeBuilder::new();
        let mut stmts = vec![b.load(Reg(1), Expr::val(1))];
        if fenced_reader {
            stmts.push(b.dmb_sy());
        }
        stmts.push(b.load(Reg(2), Expr::val(0)));
        let t2 = b.finish_seq(&stmts);
        Program::new(vec![t1, t2])
    }

    #[test]
    fn flat_mp_plain_allows_weak_outcome() {
        let exp = run(mp(false));
        let pairs: BTreeSet<(i64, i64)> = exp
            .outcomes
            .iter()
            .map(|o| (o.reg(1, Reg(1)).0, o.reg(1, Reg(2)).0))
            .collect();
        assert!(pairs.contains(&(42, 0)), "weak MP outcome via OoO satisfy");
        assert_eq!(pairs.len(), 4);
    }

    #[test]
    fn flat_mp_fenced_forbids_weak_outcome() {
        let exp = run(mp(true));
        let pairs: BTreeSet<(i64, i64)> = exp
            .outcomes
            .iter()
            .map(|o| (o.reg(1, Reg(1)).0, o.reg(1, Reg(2)).0))
            .collect();
        assert!(!pairs.contains(&(42, 0)));
        assert_eq!(pairs.len(), 3);
    }

    #[test]
    fn flat_lb_allows_cycle_via_early_propagate() {
        // LB: both loads read 1 — stores propagate before loads satisfy.
        let mut b = CodeBuilder::new();
        let l = b.load(Reg(1), Expr::val(0));
        let s = b.store(Expr::val(1), Expr::val(1));
        let t1 = b.finish_seq(&[l, s]);
        let mut b = CodeBuilder::new();
        let l = b.load(Reg(2), Expr::val(1));
        let s = b.store(Expr::val(0), Expr::val(1));
        let t2 = b.finish_seq(&[l, s]);
        let exp = run(Program::new(vec![t1, t2]));
        assert!(exp
            .outcomes
            .iter()
            .any(|o| o.reg(0, Reg(1)).0 == 1 && o.reg(1, Reg(2)).0 == 1));
    }

    #[test]
    fn flat_lb_data_deps_forbid_cycle() {
        let mk = |from: i64, to: i64, reg| {
            let mut b = CodeBuilder::new();
            let l = b.load(reg, Expr::val(from));
            let s = b.store(Expr::val(to), Expr::reg(reg));
            b.finish_seq(&[l, s])
        };
        let exp = run(Program::new(vec![mk(0, 1, Reg(1)), mk(1, 0, Reg(2))]));
        assert!(!exp
            .outcomes
            .iter()
            .any(|o| o.reg(0, Reg(1)).0 != 0 || o.reg(1, Reg(2)).0 != 0));
    }

    #[test]
    fn flat_ppoca_allowed_via_forwarding_under_speculation() {
        // PPOCA (§2): ctrl-speculated store forwarded to a load.
        let mut b = CodeBuilder::new();
        let s1 = b.store(Expr::val(0), Expr::val(37));
        let f = b.dmb_sy();
        let s2 = b.store(Expr::val(1), Expr::val(42));
        let t1 = b.finish_seq(&[s1, f, s2]);
        let mut b = CodeBuilder::new();
        let d = b.load(Reg(0), Expr::val(1));
        let i = b.store(Expr::val(2), Expr::val(51));
        let j = b.load(Reg(1), Expr::val(2));
        let fl = b.load(Reg(2), Expr::val(0).with_dep(Reg(1)));
        let body = b.seq(&[i, j, fl]);
        let br = b.if_then(Expr::reg(Reg(0)).eq(Expr::val(42)), body);
        let t2 = b.finish_seq(&[d, br]);
        let exp = run(Program::new(vec![t1, t2]));
        assert!(
            exp.outcomes.iter().any(|o| o.reg(1, Reg(0)).0 == 42
                && o.reg(1, Reg(1)).0 == 51
                && o.reg(1, Reg(2)).0 == 0),
            "PPOCA outcome must be reachable in Flat-lite"
        );
    }

    #[test]
    fn flat_coherence_corr() {
        let mut b = CodeBuilder::new();
        let s = b.store(Expr::val(0), Expr::val(1));
        let t1 = b.finish_seq(&[s]);
        let mut b = CodeBuilder::new();
        let l1 = b.load(Reg(1), Expr::val(0));
        let l2 = b.load(Reg(2), Expr::val(0));
        let t2 = b.finish_seq(&[l1, l2]);
        let exp = run(Program::new(vec![t1, t2]));
        let pairs: BTreeSet<(i64, i64)> = exp
            .outcomes
            .iter()
            .map(|o| (o.reg(1, Reg(1)).0, o.reg(1, Reg(2)).0))
            .collect();
        assert_eq!(pairs, BTreeSet::from([(0, 0), (0, 1), (1, 1)]));
    }

    #[test]
    fn flat_exclusive_increment_race_yields_consistent_counts() {
        // two ldx/stx increments, no retry loops: each may fail or succeed;
        // successes must be atomic (never lost updates).
        let mk = || {
            let mut b = CodeBuilder::new();
            let l = b.load_excl(Reg(1), Expr::val(0));
            let s = b.store_excl(Reg(2), Expr::val(0), Expr::reg(Reg(1)).add(Expr::val(1)));
            b.finish_seq(&[l, s])
        };
        let exp = run(Program::new(vec![mk(), mk()]));
        for o in &exp.outcomes {
            let successes = [0, 1]
                .iter()
                .filter(|&&t| o.reg(t, Reg(2)).0 == 0)
                .count() as i64;
            assert_eq!(
                o.loc(promising_core::Loc(0)).0,
                successes,
                "final counter must equal the number of successful increments: {o}"
            );
        }
    }
}
