//! Exhaustive exploration for the Flat-lite baseline: plain interleaving
//! search over the nondeterministic transitions with visited-state
//! deduplication — the cost profile Tables 2/3 of the paper measure
//! against.
//!
//! The strategy is a [`SearchModel`] ([`FlatModel`]) run by the shared
//! generic engine of `promising-explorer` ([`promising_explorer::Engine`]):
//! fingerprinted visited set (exact keys in paranoid mode), wall-clock /
//! state budgets, optional parallel workers via `Config::workers` (with
//! outcome sets independent of the worker count), and seeded random-walk
//! sampling via [`Engine::sample`].

use crate::machine::{FlatMachine, FlatStateKey, FlatTransition};
use promising_core::ids::TId;
use promising_core::{Config, Fingerprint, Footprint, MayAccess, Outcome};
use promising_explorer::{Engine, SearchBudget, SearchModel, Stats};
use std::collections::BTreeSet;
use std::time::Instant;

/// Counters from a Flat exploration — the shared explorer [`Stats`].
pub type FlatStats = Stats;

/// Result of a Flat exploration — the shared explorer result type.
pub type FlatExploration = promising_explorer::Exploration<Outcome>;

/// The Flat-lite interleaving strategy as a [`SearchModel`]: states are
/// whole [`FlatMachine`]s, transitions are every enabled micro-step
/// (fetch, satisfy, propagate, resolve, …) of every thread.
pub struct FlatModel {
    root: FlatMachine,
}

impl FlatModel {
    /// The Flat-lite strategy rooted at `machine`.
    pub fn new(machine: &FlatMachine) -> FlatModel {
        FlatModel {
            root: machine.clone(),
        }
    }
}

impl SearchModel for FlatModel {
    type State = FlatMachine;
    type Transition = FlatTransition;
    type Exact = FlatStateKey;
    type Out = Outcome;
    type Cache = ();

    fn config(&self) -> &Config {
        self.root.config()
    }

    fn root(&self, _stats: &mut Stats) -> FlatMachine {
        self.root.clone()
    }

    fn cache(&self) {}

    fn fingerprint(&self, s: &FlatMachine) -> Fingerprint {
        s.fingerprint()
    }

    fn exact_key(&self, s: &FlatMachine) -> FlatStateKey {
        s.state_key()
    }

    fn outcome(
        &self,
        s: &FlatMachine,
        _cache: &mut (),
        _stats: &mut Stats,
        _deadline: Option<Instant>,
        out: &mut BTreeSet<Outcome>,
    ) {
        if s.terminated() {
            out.insert(s.outcome());
        }
    }

    fn is_final(&self, s: &FlatMachine, stats: &mut Stats) -> bool {
        if s.terminated() {
            return true;
        }
        if s.any_stuck() {
            stats.bound_hits += 1;
            return true;
        }
        false
    }

    fn expand(
        &self,
        s: &FlatMachine,
        _cache: &mut (),
        _stats: &mut Stats,
        _deadline: Option<Instant>,
    ) -> Vec<FlatTransition> {
        s.enabled()
    }

    fn apply(&self, s: &FlatMachine, tr: &FlatTransition, stats: &mut Stats) -> FlatMachine {
        let mut next = s.clone();
        next.apply(tr);
        stats.transitions += 1;
        next
    }

    fn footprint(&self, s: &FlatMachine, t: &FlatTransition) -> Footprint {
        match *t {
            // speculation guesses and store-exclusive failures touch only
            // the acting thread's instance list
            FlatTransition::FetchBranch { tid, .. } | FlatTransition::FailStx { tid, .. } => {
                Footprint::local(tid.0)
            }
            FlatTransition::Satisfy { tid, idx } => match s.access_target(tid, idx) {
                Some(loc) => Footprint::read(tid.0, loc),
                None => Footprint::opaque(),
            },
            FlatTransition::Propagate { tid, idx } => match s.access_target(tid, idx) {
                Some(loc) => Footprint::write(tid.0, loc, true),
                None => Footprint::opaque(),
            },
            // the RMW's read half is a plain read of its location; the
            // write half is an append whose pairing gate also *reads*
            // the location's stream (a foreign append disables it)
            FlatTransition::BindRmw { tid, idx } => match s.access_target(tid, idx) {
                Some(loc) => Footprint::read(tid.0, loc),
                None => Footprint::opaque(),
            },
            FlatTransition::PropagateRmw { tid, idx } => match s.access_target(tid, idx) {
                Some(loc) => {
                    let mut fp = Footprint::write(tid.0, loc, true);
                    fp.reads.insert(loc);
                    fp
                }
                None => Footprint::opaque(),
            },
        }
    }

    /// With the per-location dynamic layer on (`Config::dpor`), appends
    /// to *disjoint* locations are independent: the canonical per-location
    /// state encoding ([`FlatMachine::canonical_words`]) makes their two
    /// interleavings fingerprint-equal, so they commute in the exact sense
    /// the commutation proptests check. With it off, the strict relation
    /// (appends never commute) of PR 5 applies.
    fn independent(&self, s: &FlatMachine, a: &FlatTransition, b: &FlatTransition) -> bool {
        let (fa, fb) = (self.footprint(s, a), self.footprint(s, b));
        if self.config().por && self.config().dpor {
            fa.independent_with_commuting_appends(&fb)
        } else {
            fa.independent_with(&fb)
        }
    }

    fn reduce(&self, m: &FlatMachine, transitions: &mut Vec<FlatTransition>) {
        if self.config().dpor {
            if !reduce_flat_frozen_reads(m, transitions) {
                reduce_flat_delayable(m, transitions);
            }
        } else {
            reduce_flat_observers(m, transitions);
        }
    }
}

fn tid_of(t: &FlatTransition) -> usize {
    match t {
        FlatTransition::FetchBranch { tid, .. }
        | FlatTransition::Satisfy { tid, .. }
        | FlatTransition::FailStx { tid, .. }
        | FlatTransition::Propagate { tid, .. }
        | FlatTransition::BindRmw { tid, .. }
        | FlatTransition::PropagateRmw { tid, .. } => tid.0,
    }
}

/// Collapse co-enabled *pure observers*, as in the naive promising
/// search — with one Flat-specific strengthening. A `Satisfy` does
/// not name the write it binds (it always reads the coherence-latest
/// one), so a delayed observer's *future* loads must also be immune
/// to everyone else's appends: a thread is prunable only when it can
/// never append again ([`FlatMachine::thread_future_writes`] empty —
/// this also rules out pending store-exclusives, whose `FailStx`
/// would otherwise race their own propagation window) and no other
/// thread's possible future writes intersect its possible future
/// reads. Under that condition every step the thread will ever take
/// is thread-local with memory-independent effects, so keeping one
/// such thread and delaying the rest is a persistent set.
fn reduce_flat_observers(m: &FlatMachine, transitions: &mut Vec<FlatTransition>) {
    let n = m.threads().len();
    let mut enabled_safe = vec![true; n];
    let mut seen = vec![false; n];
    for t in transitions.iter() {
        let (tid, safe) = match t {
            FlatTransition::FetchBranch { tid, .. } => (tid.0, true),
            FlatTransition::Satisfy { tid, .. } => (tid.0, true),
            FlatTransition::FailStx { tid, .. }
            | FlatTransition::Propagate { tid, .. }
            | FlatTransition::BindRmw { tid, .. }
            | FlatTransition::PropagateRmw { tid, .. } => (tid.0, false),
        };
        seen[tid] = true;
        enabled_safe[tid] &= safe;
    }
    let mut prunable = Vec::with_capacity(n);
    let mut future_writes: Vec<Option<MayAccess>> = vec![None; n];
    let mut writes_of = |m: &FlatMachine, tid: usize| -> MayAccess {
        future_writes[tid]
            .get_or_insert_with(|| m.thread_future_writes(TId(tid)))
            .clone()
    };
    for tid in 0..n {
        let ok = seen[tid] && enabled_safe[tid] && writes_of(m, tid).is_empty() && {
            let reads = m.thread_future_reads(TId(tid));
            (0..n).all(|other| other == tid || !writes_of(m, other).intersects(&reads))
        };
        prunable.push(ok);
    }
    let mut observers = (0..n).filter(|&t| prunable[t]);
    let Some(keep) = observers.next() else {
        return;
    };
    if observers.next().is_none() {
        return;
    }
    transitions.retain(|t| !prunable[tid_of(t)] || tid_of(t) == keep);
}

/// Frozen-read persistent sets (the sharper half of the `Config::dpor`
/// layer): when every enabled transition of some thread `q` is a
/// speculation guess (`FetchBranch`) or a `Satisfy` of a location **no
/// other thread may ever write again**, exploring *only* `q`'s
/// transitions at this state is a persistent set — every other thread's
/// transitions (including its appends) are dropped here and re-examined
/// one `q`-step later.
///
/// Why the set is persistent:
///
/// * every enabledness scan of the flat machine (`load_source`,
///   `store_ready`, `rmw_bind_ready`/`rmw_propagate_ready`, the fetch
///   point) reads only the acting thread's instance list and registers
///   — memory is consulted only for a satisfy's/bind's *value* and the
///   `atomic` pairing gates of store-exclusives and bound RMWs
///   (which foreign appends can switch off but never on). So `q`'s
///   enabled set cannot change, and no disabled `q`-transition can
///   become enabled, until `q` itself moves: the eligibility check
///   covers exactly the transitions any interleaving of the others
///   could ever put in front of `q`'s;
/// * each member of the set commutes *state-identically* with every
///   other thread's transition: it mutates only `q`'s instance list and
///   reads only locations whose streams are frozen (a delayed `Satisfy`
///   binds the coherence-latest write of its location, which no other
///   thread may append to; a forwarded `Satisfy` and a `FetchBranch`
///   never read memory at all), while the other transition neither
///   reads `q`'s state nor can be disabled by it;
/// * the flat state graph is acyclic (fetch fuel strictly decreases on
///   loop back-edges, instances only advance), so the classical
///   ignoring problem cannot arise and persistent sets preserve every
///   terminated state — which is where outcomes are read.
///
/// The choice of `q` (lowest eligible tid) is a pure function of the
/// state, so fingerprint dedup stays sound. Returns whether the rule
/// fired; if not, the caller falls back to the delayable-thread
/// collapse. This is the rule that cracks the append-bound stack/queue
/// rows: a popper reading the immutable fields of an already-published
/// node runs to its next CAS before any sibling interleaves.
fn reduce_flat_frozen_reads(m: &FlatMachine, transitions: &mut Vec<FlatTransition>) -> bool {
    let n = m.threads().len();
    if n < 2 {
        return false;
    }
    let mut writes: Vec<Option<MayAccess>> = vec![None; n];
    let mut writes_of = |r: usize| -> MayAccess {
        writes[r]
            .get_or_insert_with(|| m.thread_future_writes(TId(r)))
            .clone()
    };
    let mut has = vec![false; n];
    let mut eligible = vec![true; n];
    for t in transitions.iter() {
        let q = tid_of(t);
        has[q] = true;
        eligible[q] &= match *t {
            FlatTransition::FetchBranch { .. } => true,
            FlatTransition::Satisfy { tid, idx } => match m.access_target(tid, idx) {
                Some(loc) => {
                    let l = MayAccess::Locs(BTreeSet::from([loc]));
                    (0..n).all(|r| r == q || !writes_of(r).intersects(&l))
                }
                None => false,
            },
            // anything that may touch memory (or, for `FailStx`, races
            // its own propagation window) disqualifies the thread
            _ => false,
        };
    }
    let Some(keep) = (0..n).find(|&q| has[q] && eligible[q]) else {
        return false;
    };
    if transitions.iter().all(|t| tid_of(t) == keep) {
        return false;
    }
    transitions.retain(|t| tid_of(t) == keep);
    true
}

/// Per-state persistent sets over the per-location conflict structure
/// (the `Config::dpor` layer): collapse co-enabled *delayable* threads.
///
/// A thread `q` is delayable when its future accesses are mutually
/// disjoint from every other thread's: no other thread may still write
/// a location `q` may still read (a delayed `Satisfy` binds the
/// coherence-latest write, so foreign appends to its location would
/// change its value), and `q` may never write a location any other
/// thread may still read *or write*. Unlike the PR 5 pure-observer rule
/// ([`reduce_flat_observers`], still used with `dpor` off), `q` may
/// still append — to locations nobody else touches — and every
/// transition kind is allowed: under the canonical per-location state
/// encoding ([`FlatMachine::canonical_words`]) `q`'s appends commute
/// with everyone else's (the interleaving order of disjoint appends is
/// erased by the encoding), its store-exclusive `atomic` windows read
/// only its own locations' streams, and its reads bind identical values
/// either side of the swap. Keeping the lowest delayable thread plus
/// every non-delayable thread's transitions is therefore a persistent
/// set up to the renumbering bisimulation the encoding quotients by.
///
/// The delayable set strictly contains the PR 5 prunable set (empty
/// future writes make the new conditions collapse to the old ones), so
/// read-parallel workloads reduce at least as much; disjoint-writer
/// workloads — which PR 5 could not touch — now collapse too
/// (`tests/dpor_agreement.rs` has the anti-rot check). The decision is
/// a pure function of the state, so fingerprint dedup stays sound.
fn reduce_flat_delayable(m: &FlatMachine, transitions: &mut Vec<FlatTransition>) {
    let n = m.threads().len();
    let mut seen = vec![false; n];
    for t in transitions.iter() {
        seen[tid_of(t)] = true;
    }
    let reads: Vec<MayAccess> = (0..n).map(|t| m.thread_future_reads(TId(t))).collect();
    let writes: Vec<MayAccess> = (0..n).map(|t| m.thread_future_writes(TId(t))).collect();
    let mut delayable = vec![false; n];
    for q in 0..n {
        delayable[q] = seen[q]
            && (0..n).filter(|&r| r != q).all(|r| {
                !writes[r].intersects(&reads[q])
                    && !writes[q].intersects(&reads[r])
                    && !writes[q].intersects(&writes[r])
            });
    }
    let mut candidates = (0..n).filter(|&t| delayable[t]);
    let Some(keep) = candidates.next() else {
        return;
    };
    if candidates.next().is_none() {
        // a single delayable thread has nothing to collapse against
        return;
    }
    transitions.retain(|t| !delayable[tid_of(t)] || tid_of(t) == keep);
}

/// Exhaustively explore all interleavings of `machine`.
pub fn explore_flat(machine: &FlatMachine) -> FlatExploration {
    explore_flat_budget(machine, SearchBudget::UNBOUNDED)
}

/// [`explore_flat`] under a [`SearchBudget`]: wall-clock deadline and/or
/// global state budget (total visits stay within `max_states` regardless
/// of the worker count), reported via `stats.stop` — the "out of
/// time" guard used by the benchmark tables.
pub fn explore_flat_budget(machine: &FlatMachine, budget: SearchBudget) -> FlatExploration {
    Engine::new(FlatModel::new(machine))
        .with_budget(budget)
        .run()
}

#[cfg(test)]
mod tests {
    use super::*;
    use promising_core::{CodeBuilder, Config, Expr, Program, Reg};
    use std::collections::BTreeSet;
    use std::sync::Arc;

    fn run(program: Program) -> FlatExploration {
        let m = FlatMachine::new(Arc::new(program), Config::arm());
        explore_flat(&m)
    }

    fn mp(fenced_reader: bool) -> Program {
        let mut b = CodeBuilder::new();
        let s1 = b.store(Expr::val(0), Expr::val(37));
        let f = b.dmb_sy();
        let s2 = b.store(Expr::val(1), Expr::val(42));
        let t1 = b.finish_seq(&[s1, f, s2]);
        let mut b = CodeBuilder::new();
        let mut stmts = vec![b.load(Reg(1), Expr::val(1))];
        if fenced_reader {
            stmts.push(b.dmb_sy());
        }
        stmts.push(b.load(Reg(2), Expr::val(0)));
        let t2 = b.finish_seq(&stmts);
        Program::new(vec![t1, t2])
    }

    #[test]
    fn flat_mp_plain_allows_weak_outcome() {
        let exp = run(mp(false));
        let pairs: BTreeSet<(i64, i64)> = exp
            .outcomes
            .iter()
            .map(|o| (o.reg(1, Reg(1)).0, o.reg(1, Reg(2)).0))
            .collect();
        assert!(pairs.contains(&(42, 0)), "weak MP outcome via OoO satisfy");
        assert_eq!(pairs.len(), 4);
    }

    #[test]
    fn flat_mp_fenced_forbids_weak_outcome() {
        let exp = run(mp(true));
        let pairs: BTreeSet<(i64, i64)> = exp
            .outcomes
            .iter()
            .map(|o| (o.reg(1, Reg(1)).0, o.reg(1, Reg(2)).0))
            .collect();
        assert!(!pairs.contains(&(42, 0)));
        assert_eq!(pairs.len(), 3);
    }

    #[test]
    fn flat_lb_allows_cycle_via_early_propagate() {
        // LB: both loads read 1 — stores propagate before loads satisfy.
        let mut b = CodeBuilder::new();
        let l = b.load(Reg(1), Expr::val(0));
        let s = b.store(Expr::val(1), Expr::val(1));
        let t1 = b.finish_seq(&[l, s]);
        let mut b = CodeBuilder::new();
        let l = b.load(Reg(2), Expr::val(1));
        let s = b.store(Expr::val(0), Expr::val(1));
        let t2 = b.finish_seq(&[l, s]);
        let exp = run(Program::new(vec![t1, t2]));
        assert!(exp
            .outcomes
            .iter()
            .any(|o| o.reg(0, Reg(1)).0 == 1 && o.reg(1, Reg(2)).0 == 1));
    }

    #[test]
    fn flat_lb_data_deps_forbid_cycle() {
        let mk = |from: i64, to: i64, reg| {
            let mut b = CodeBuilder::new();
            let l = b.load(reg, Expr::val(from));
            let s = b.store(Expr::val(to), Expr::reg(reg));
            b.finish_seq(&[l, s])
        };
        let exp = run(Program::new(vec![mk(0, 1, Reg(1)), mk(1, 0, Reg(2))]));
        assert!(!exp
            .outcomes
            .iter()
            .any(|o| o.reg(0, Reg(1)).0 != 0 || o.reg(1, Reg(2)).0 != 0));
    }

    #[test]
    fn flat_ppoca_allowed_via_forwarding_under_speculation() {
        // PPOCA (§2): ctrl-speculated store forwarded to a load.
        let mut b = CodeBuilder::new();
        let s1 = b.store(Expr::val(0), Expr::val(37));
        let f = b.dmb_sy();
        let s2 = b.store(Expr::val(1), Expr::val(42));
        let t1 = b.finish_seq(&[s1, f, s2]);
        let mut b = CodeBuilder::new();
        let d = b.load(Reg(0), Expr::val(1));
        let i = b.store(Expr::val(2), Expr::val(51));
        let j = b.load(Reg(1), Expr::val(2));
        let fl = b.load(Reg(2), Expr::val(0).with_dep(Reg(1)));
        let body = b.seq(&[i, j, fl]);
        let br = b.if_then(Expr::reg(Reg(0)).eq(Expr::val(42)), body);
        let t2 = b.finish_seq(&[d, br]);
        let exp = run(Program::new(vec![t1, t2]));
        assert!(
            exp.outcomes.iter().any(|o| o.reg(1, Reg(0)).0 == 42
                && o.reg(1, Reg(1)).0 == 51
                && o.reg(1, Reg(2)).0 == 0),
            "PPOCA outcome must be reachable in Flat-lite"
        );
    }

    #[test]
    fn flat_coherence_corr() {
        let mut b = CodeBuilder::new();
        let s = b.store(Expr::val(0), Expr::val(1));
        let t1 = b.finish_seq(&[s]);
        let mut b = CodeBuilder::new();
        let l1 = b.load(Reg(1), Expr::val(0));
        let l2 = b.load(Reg(2), Expr::val(0));
        let t2 = b.finish_seq(&[l1, l2]);
        let exp = run(Program::new(vec![t1, t2]));
        let pairs: BTreeSet<(i64, i64)> = exp
            .outcomes
            .iter()
            .map(|o| (o.reg(1, Reg(1)).0, o.reg(1, Reg(2)).0))
            .collect();
        assert_eq!(pairs, BTreeSet::from([(0, 0), (0, 1), (1, 1)]));
    }

    #[test]
    fn flat_exclusive_increment_race_yields_consistent_counts() {
        // two ldx/stx increments, no retry loops: each may fail or succeed;
        // successes must be atomic (never lost updates).
        let mk = || {
            let mut b = CodeBuilder::new();
            let l = b.load_excl(Reg(1), Expr::val(0));
            let s = b.store_excl(Reg(2), Expr::val(0), Expr::reg(Reg(1)).add(Expr::val(1)));
            b.finish_seq(&[l, s])
        };
        let exp = run(Program::new(vec![mk(), mk()]));
        for o in &exp.outcomes {
            let successes = [0, 1].iter().filter(|&&t| o.reg(t, Reg(2)).0 == 0).count() as i64;
            assert_eq!(
                o.loc(promising_core::Loc(0)).0,
                successes,
                "final counter must equal the number of successful increments: {o}"
            );
        }
    }

    #[test]
    fn flat_parallel_and_paranoid_agree_with_serial() {
        let serial = run(mp(false));
        for config in [
            Config::arm().with_workers(4),
            Config::arm().with_paranoid(true),
        ] {
            let m = FlatMachine::new(Arc::new(mp(false)), config);
            let exp = explore_flat(&m);
            assert_eq!(exp.outcomes, serial.outcomes);
        }
    }

    #[test]
    fn flat_state_budget_truncates() {
        let m = FlatMachine::new(Arc::new(mp(false)), Config::arm());
        let exp = explore_flat_budget(&m, SearchBudget::max_states(5));
        assert!(exp.stats.truncated());
        assert!(exp.stats.states <= 6);
    }

    #[test]
    fn flat_sampling_is_sound_and_deterministic() {
        let exhaustive = run(mp(false));
        let m = FlatMachine::new(Arc::new(mp(false)), Config::arm());
        let a = Engine::new(FlatModel::new(&m)).sample(32, 5);
        assert!(a.outcomes.is_subset(&exhaustive.outcomes));
        assert!(!a.outcomes.is_empty());
        let b = Engine::new(FlatModel::new(&m)).sample(32, 5);
        assert_eq!(a.outcomes, b.outcomes);
        assert_eq!(a.stats.states, b.stats.states);
    }
}
