//! Exhaustive exploration for the Flat-lite baseline: plain interleaving
//! search over the nondeterministic transitions with visited-state
//! deduplication — the cost profile Tables 2/3 of the paper measure
//! against.
//!
//! Runs on the shared exploration frontier of `promising-explorer`
//! ([`promising_explorer::frontier`]): fingerprinted visited set (exact
//! keys in paranoid mode) and optional parallel workers via
//! `Config::workers`, with outcome sets independent of the worker count.

use crate::machine::{FlatMachine, FlatStateKey};
use promising_core::Outcome;
use promising_explorer::frontier::{drive, effective_workers, Ctx, ShardedVisited};
use std::collections::BTreeSet;
use std::time::{Duration, Instant};

/// Counters from a Flat exploration.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct FlatStats {
    /// Distinct states visited.
    pub states: u64,
    /// Transitions applied.
    pub transitions: u64,
    /// Traces that hit the loop bound.
    pub bound_hits: u64,
    /// Unfinished states with no enabled transition.
    pub deadlocks: u64,
    /// Wall-clock duration.
    pub duration: Duration,
    /// Whether the search stopped early on the state budget.
    pub truncated: bool,
}

impl FlatStats {
    /// Merge counters from a per-worker sub-search.
    pub fn absorb(&mut self, other: &FlatStats) {
        self.states += other.states;
        self.transitions += other.transitions;
        self.bound_hits += other.bound_hits;
        self.deadlocks += other.deadlocks;
        self.duration += other.duration;
        self.truncated |= other.truncated;
    }
}

/// Result of a Flat exploration.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct FlatExploration {
    /// Outcomes of all complete executions.
    pub outcomes: BTreeSet<Outcome>,
    /// Search statistics.
    pub stats: FlatStats,
}

/// Exhaustively explore all interleavings of `machine`.
pub fn explore_flat(machine: &FlatMachine) -> FlatExploration {
    explore_flat_bounded(machine, u64::MAX)
}

/// Like [`explore_flat`] but giving up (with `stats.truncated`) after
/// visiting `max_states` states — the "out of time" guard used by the
/// benchmark tables.
pub fn explore_flat_bounded(machine: &FlatMachine, max_states: u64) -> FlatExploration {
    explore_flat_deadline(machine, max_states, None)
}

/// Fully bounded exploration: state budget and wall-clock deadline. The
/// state budget is global — total visits stay within `max_states`
/// regardless of the worker count.
pub fn explore_flat_deadline(
    machine: &FlatMachine,
    max_states: u64,
    deadline: Option<Duration>,
) -> FlatExploration {
    let start = Instant::now();
    let deadline_at = deadline.map(|d| start + d);
    let config = machine.config();
    let workers = effective_workers(config.workers);
    let total_states = std::sync::atomic::AtomicU64::new(0);
    let visited: ShardedVisited<FlatStateKey> = ShardedVisited::new(config.paranoid, workers);

    visited.insert(machine.fingerprint(), || machine.state_key());
    let roots = vec![machine.clone()];

    struct Local {
        stats: FlatStats,
        outcomes: BTreeSet<Outcome>,
    }

    let step = |l: &mut Local, m: FlatMachine, ctx: &mut Ctx<'_, FlatMachine>| {
        l.stats.states += 1;
        let visited_so_far = total_states.fetch_add(1, std::sync::atomic::Ordering::Relaxed) + 1;
        if visited_so_far > max_states {
            l.stats.truncated = true;
            ctx.stop();
            return;
        }
        if let Some(at) = deadline_at {
            if Instant::now() >= at {
                l.stats.truncated = true;
                ctx.stop();
                return;
            }
        }
        if m.terminated() {
            l.outcomes.insert(m.outcome());
            return;
        }
        if m.any_stuck() {
            l.stats.bound_hits += 1;
            return;
        }
        let transitions = m.enabled();
        if transitions.is_empty() {
            l.stats.deadlocks += 1;
            return;
        }
        for tr in transitions {
            let mut next = m.clone();
            next.apply(&tr);
            l.stats.transitions += 1;
            if visited.insert(next.fingerprint(), || next.state_key()) {
                ctx.push(next);
            }
        }
    };

    let results = drive(
        roots,
        workers,
        || Local {
            stats: FlatStats::default(),
            outcomes: BTreeSet::new(),
        },
        step,
        |l| (l.stats, l.outcomes),
    );

    let mut stats = FlatStats::default();
    let mut outcomes = BTreeSet::new();
    for (s, o) in results {
        stats.absorb(&s);
        outcomes.extend(o);
    }
    stats.duration = start.elapsed();
    FlatExploration { outcomes, stats }
}

#[cfg(test)]
mod tests {
    use super::*;
    use promising_core::{CodeBuilder, Config, Expr, Program, Reg};
    use std::collections::BTreeSet;
    use std::sync::Arc;

    fn run(program: Program) -> FlatExploration {
        let m = FlatMachine::new(Arc::new(program), Config::arm());
        explore_flat(&m)
    }

    fn mp(fenced_reader: bool) -> Program {
        let mut b = CodeBuilder::new();
        let s1 = b.store(Expr::val(0), Expr::val(37));
        let f = b.dmb_sy();
        let s2 = b.store(Expr::val(1), Expr::val(42));
        let t1 = b.finish_seq(&[s1, f, s2]);
        let mut b = CodeBuilder::new();
        let mut stmts = vec![b.load(Reg(1), Expr::val(1))];
        if fenced_reader {
            stmts.push(b.dmb_sy());
        }
        stmts.push(b.load(Reg(2), Expr::val(0)));
        let t2 = b.finish_seq(&stmts);
        Program::new(vec![t1, t2])
    }

    #[test]
    fn flat_mp_plain_allows_weak_outcome() {
        let exp = run(mp(false));
        let pairs: BTreeSet<(i64, i64)> = exp
            .outcomes
            .iter()
            .map(|o| (o.reg(1, Reg(1)).0, o.reg(1, Reg(2)).0))
            .collect();
        assert!(pairs.contains(&(42, 0)), "weak MP outcome via OoO satisfy");
        assert_eq!(pairs.len(), 4);
    }

    #[test]
    fn flat_mp_fenced_forbids_weak_outcome() {
        let exp = run(mp(true));
        let pairs: BTreeSet<(i64, i64)> = exp
            .outcomes
            .iter()
            .map(|o| (o.reg(1, Reg(1)).0, o.reg(1, Reg(2)).0))
            .collect();
        assert!(!pairs.contains(&(42, 0)));
        assert_eq!(pairs.len(), 3);
    }

    #[test]
    fn flat_lb_allows_cycle_via_early_propagate() {
        // LB: both loads read 1 — stores propagate before loads satisfy.
        let mut b = CodeBuilder::new();
        let l = b.load(Reg(1), Expr::val(0));
        let s = b.store(Expr::val(1), Expr::val(1));
        let t1 = b.finish_seq(&[l, s]);
        let mut b = CodeBuilder::new();
        let l = b.load(Reg(2), Expr::val(1));
        let s = b.store(Expr::val(0), Expr::val(1));
        let t2 = b.finish_seq(&[l, s]);
        let exp = run(Program::new(vec![t1, t2]));
        assert!(exp
            .outcomes
            .iter()
            .any(|o| o.reg(0, Reg(1)).0 == 1 && o.reg(1, Reg(2)).0 == 1));
    }

    #[test]
    fn flat_lb_data_deps_forbid_cycle() {
        let mk = |from: i64, to: i64, reg| {
            let mut b = CodeBuilder::new();
            let l = b.load(reg, Expr::val(from));
            let s = b.store(Expr::val(to), Expr::reg(reg));
            b.finish_seq(&[l, s])
        };
        let exp = run(Program::new(vec![mk(0, 1, Reg(1)), mk(1, 0, Reg(2))]));
        assert!(!exp
            .outcomes
            .iter()
            .any(|o| o.reg(0, Reg(1)).0 != 0 || o.reg(1, Reg(2)).0 != 0));
    }

    #[test]
    fn flat_ppoca_allowed_via_forwarding_under_speculation() {
        // PPOCA (§2): ctrl-speculated store forwarded to a load.
        let mut b = CodeBuilder::new();
        let s1 = b.store(Expr::val(0), Expr::val(37));
        let f = b.dmb_sy();
        let s2 = b.store(Expr::val(1), Expr::val(42));
        let t1 = b.finish_seq(&[s1, f, s2]);
        let mut b = CodeBuilder::new();
        let d = b.load(Reg(0), Expr::val(1));
        let i = b.store(Expr::val(2), Expr::val(51));
        let j = b.load(Reg(1), Expr::val(2));
        let fl = b.load(Reg(2), Expr::val(0).with_dep(Reg(1)));
        let body = b.seq(&[i, j, fl]);
        let br = b.if_then(Expr::reg(Reg(0)).eq(Expr::val(42)), body);
        let t2 = b.finish_seq(&[d, br]);
        let exp = run(Program::new(vec![t1, t2]));
        assert!(
            exp.outcomes.iter().any(|o| o.reg(1, Reg(0)).0 == 42
                && o.reg(1, Reg(1)).0 == 51
                && o.reg(1, Reg(2)).0 == 0),
            "PPOCA outcome must be reachable in Flat-lite"
        );
    }

    #[test]
    fn flat_coherence_corr() {
        let mut b = CodeBuilder::new();
        let s = b.store(Expr::val(0), Expr::val(1));
        let t1 = b.finish_seq(&[s]);
        let mut b = CodeBuilder::new();
        let l1 = b.load(Reg(1), Expr::val(0));
        let l2 = b.load(Reg(2), Expr::val(0));
        let t2 = b.finish_seq(&[l1, l2]);
        let exp = run(Program::new(vec![t1, t2]));
        let pairs: BTreeSet<(i64, i64)> = exp
            .outcomes
            .iter()
            .map(|o| (o.reg(1, Reg(1)).0, o.reg(1, Reg(2)).0))
            .collect();
        assert_eq!(pairs, BTreeSet::from([(0, 0), (0, 1), (1, 1)]));
    }

    #[test]
    fn flat_exclusive_increment_race_yields_consistent_counts() {
        // two ldx/stx increments, no retry loops: each may fail or succeed;
        // successes must be atomic (never lost updates).
        let mk = || {
            let mut b = CodeBuilder::new();
            let l = b.load_excl(Reg(1), Expr::val(0));
            let s = b.store_excl(Reg(2), Expr::val(0), Expr::reg(Reg(1)).add(Expr::val(1)));
            b.finish_seq(&[l, s])
        };
        let exp = run(Program::new(vec![mk(), mk()]));
        for o in &exp.outcomes {
            let successes = [0, 1]
                .iter()
                .filter(|&&t| o.reg(t, Reg(2)).0 == 0)
                .count() as i64;
            assert_eq!(
                o.loc(promising_core::Loc(0)).0,
                successes,
                "final counter must equal the number of successful increments: {o}"
            );
        }
    }

    #[test]
    fn flat_parallel_and_paranoid_agree_with_serial() {
        let serial = run(mp(false));
        for config in [
            Config::arm().with_workers(4),
            Config::arm().with_paranoid(true),
        ] {
            let m = FlatMachine::new(Arc::new(mp(false)), config);
            let exp = explore_flat(&m);
            assert_eq!(exp.outcomes, serial.outcomes);
        }
    }
}
