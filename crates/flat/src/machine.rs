//! The Flat-lite machine: out-of-order instruction execution over a flat
//! list memory, with explicit branch speculation and squash.
//!
//! Nondeterministic transitions (interleaved across threads):
//!
//! * **speculative fetch** past an unresolved branch (two guesses);
//! * **load satisfy** — binds a load to the current coherence-latest write
//!   (or forwards from an unpropagated po-earlier store);
//! * **store propagate** — appends to memory, out of order where the
//!   architecture allows;
//! * **store-exclusive fail**;
//! * **RMW bind / RMW propagate** — the two halves of a
//!   single-instruction atomic: the bind satisfies the read (and the
//!   acquire strength), the propagate appends the write, gated on no
//!   foreign same-location write having landed in between.
//!
//! Everything else (fetch of non-branches, register computation, branch
//! resolution + mis-speculation squash, fence/isb commit) is deterministic
//! and auto-drained after every transition. This gives the baseline the
//! multiple-steps-per-instruction, speculation-and-squash cost structure
//! of the original Flat model.
//!
//! Compared to the architecture (and to Promising), Flat-lite makes two
//! *conservative* simplifications, documented in DESIGN.md: loads wait for
//! the addresses of all po-earlier accesses to resolve (real ARM lets them
//! satisfy speculatively and restarts on coherence violations), and a
//! store exclusive's success register binds only at propagate/fail time
//! (real ARM may assume success early — the §C.1 relaxation). Both make
//! Flat-lite forbid a handful of exotic outcomes that the other two models
//! allow; the litmus harness skips exactly those shapes for Flat.

use crate::instance::{InstOp, InstState, Instance, Src};
use promising_core::config::Arch;
use promising_core::config::Config;
use promising_core::expr::Expr;
use promising_core::fingerprint::{Fingerprint, FpHasher, WordSink};
use promising_core::ids::{Loc, Reg, TId, Timestamp, Val};
use promising_core::memory::{Memory, Msg};
use promising_core::stmt::{
    MayAccess, Program, ReadKind, RmwOp, Stmt, StmtId, WriteKind, SCRATCH_REG_BASE,
};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use std::sync::Arc;

/// One hardware thread.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct FlatThread {
    /// Fetched instruction instances, in fetch (program) order along the
    /// current speculative path.
    pub instances: Vec<Instance>,
    /// Continuation to fetch from next.
    pub fetch_cont: Vec<StmtId>,
    /// Remaining taken-loop fetch budget.
    pub fetch_fuel: u32,
    /// Set when the loop bound was exhausted on a *resolved* path.
    pub stuck: bool,
}

/// A nondeterministic Flat transition.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum FlatTransition {
    /// Speculatively fetch past the unresolved branch at the fetch point,
    /// guessing the given direction.
    FetchBranch {
        /// Acting thread.
        tid: TId,
        /// Guessed direction.
        taken: bool,
    },
    /// Satisfy the pending load instance at `idx`.
    Satisfy {
        /// Acting thread.
        tid: TId,
        /// Instance index.
        idx: usize,
    },
    /// Propagate the pending store instance at `idx` to memory.
    Propagate {
        /// Acting thread.
        tid: TId,
        /// Instance index.
        idx: usize,
    },
    /// Fail the pending store-exclusive instance at `idx`.
    FailStx {
        /// Acting thread.
        tid: TId,
        /// Instance index.
        idx: usize,
    },
    /// Bind the read half of the pending RMW instance at `idx`: read the
    /// coherence-latest write, satisfying the acquire strength. A CAS
    /// whose compare fails degrades here to a bare bound read and
    /// retires immediately.
    BindRmw {
        /// Acting thread.
        tid: TId,
        /// Instance index.
        idx: usize,
    },
    /// Propagate the write half of the bound RMW instance at `idx`:
    /// append the updated value, guarded by the exclusive-pairing
    /// invariant (no other thread's write to the location between the
    /// bound read and the append).
    PropagateRmw {
        /// Acting thread.
        tid: TId,
        /// Instance index.
        idx: usize,
    },
}

impl fmt::Display for FlatTransition {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FlatTransition::FetchBranch { tid, taken } => {
                write!(
                    f,
                    "{tid}: speculate {}",
                    if *taken { "taken" } else { "not-taken" }
                )
            }
            FlatTransition::Satisfy { tid, idx } => write!(f, "{tid}: satisfy #{idx}"),
            FlatTransition::Propagate { tid, idx } => write!(f, "{tid}: propagate #{idx}"),
            FlatTransition::FailStx { tid, idx } => write!(f, "{tid}: stx-fail #{idx}"),
            FlatTransition::BindRmw { tid, idx } => write!(f, "{tid}: rmw-bind #{idx}"),
            FlatTransition::PropagateRmw { tid, idx } => {
                write!(f, "{tid}: rmw-propagate #{idx}")
            }
        }
    }
}

/// The Flat-lite machine state.
#[derive(Clone, Debug)]
pub struct FlatMachine {
    config: Arc<Config>,
    program: Arc<Program>,
    threads: Vec<FlatThread>,
    memory: Memory,
}

/// Hashable dynamic state for visited-set deduplication.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum FlatStateKey {
    /// Raw state — per-thread instance lists and fetch state plus the
    /// absolute-timestamp memory (used with `Config::dpor` off).
    Raw {
        /// Per-thread instance lists and fetch state.
        threads: Vec<FlatThread>,
        /// Memory contents.
        memory: Memory,
    },
    /// Canonical per-location word stream
    /// ([`FlatMachine::canonical_words`], used with `Config::dpor` on):
    /// states that differ only in the interleaving order of appends to
    /// *different* locations share one key, merging them in the visited
    /// set.
    Canon(Vec<u64>),
}

impl FlatMachine {
    /// Initial machine.
    pub fn new(program: Arc<Program>, config: Config) -> FlatMachine {
        FlatMachine::with_init(program, config, BTreeMap::new())
    }

    /// Initial machine with litmus initial values.
    pub fn with_init(
        program: Arc<Program>,
        config: Config,
        init: BTreeMap<Loc, Val>,
    ) -> FlatMachine {
        let threads = program
            .threads()
            .iter()
            .map(|code| FlatThread {
                instances: Vec::new(),
                fetch_cont: vec![code.entry()],
                fetch_fuel: config.loop_fuel,
                stuck: false,
            })
            .collect();
        let mut m = FlatMachine {
            config: Arc::new(config),
            program,
            threads,
            memory: Memory::with_init(init),
        };
        m.drain();
        m
    }

    /// The configuration.
    pub fn config(&self) -> &Config {
        self.config.as_ref()
    }

    /// The memory.
    pub fn memory(&self) -> &Memory {
        &self.memory
    }

    /// The threads.
    pub fn threads(&self) -> &[FlatThread] {
        &self.threads
    }

    /// Exact dedup key (stored by the paranoid visited-set mode to
    /// detect fingerprint collisions). With the per-location dynamic POR
    /// layer on (`Config::dpor`), this is the canonical word stream of
    /// [`FlatMachine::canonical_words`], so bisimilar states *compare
    /// equal* — merging them is the point, not a collision.
    pub fn state_key(&self) -> FlatStateKey {
        if self.config.por && self.config.dpor {
            FlatStateKey::Canon(self.canonical_words())
        } else {
            FlatStateKey::Raw {
                threads: self.threads.clone(),
                memory: self.memory.clone(),
            }
        }
    }

    /// Canonical per-location encoding of the dynamic state, as an
    /// unambiguous (length-prefixed) word stream.
    ///
    /// Absolute timestamps are replaced by `(location, per-location
    /// index)` pairs and memory by its per-location message streams, so
    /// two states that differ only in the *interleaving order* of
    /// appends to different locations encode identically. This is sound
    /// because Flat-lite's future behaviour observes memory only through
    /// per-location structure:
    ///
    /// * `latest_write_at_most(loc, |M|)` (load satisfy, RMW read) is the
    ///   last message of `loc`'s stream;
    /// * `atomic(loc, tid, tr, |M|+1)` (store-exclusive success) is
    ///   vacuous when the paired read `tr` was to a different location,
    ///   and otherwise quantifies only over `loc`'s messages after `tr`'s
    ///   per-location position;
    /// * `outcome()` reads per-location final values and register values
    ///   stored directly in instance states;
    /// * enabledness scans, footprints and the POR reduce look only at
    ///   instance states, resolved addresses and the static may-access
    ///   sets.
    ///
    /// Hence the timestamp order-isomorphism matching messages per
    /// location in stream order is a bisimulation relating two such
    /// states, and deduplicating them preserves the outcome set — this
    /// is the per-location append independence of the dynamic POR layer,
    /// realised as state merging rather than transition pruning. (The
    /// *promising* machine cannot do this: its scalar views cover
    /// timestamp prefixes, so the interleaving order of disjoint appends
    /// is observable there.)
    ///
    /// Instance operations are functions of their source statement except
    /// for branches, exactly as in [`FlatMachine::fingerprint`], so
    /// `(stmt, state)` per instance plus the branch extras is complete.
    ///
    /// # Retired-prefix summarisation
    ///
    /// On top of the timestamp renaming, each thread's maximal fully
    /// *bound* instance prefix is collapsed to what the thread's future
    /// can still observe of it. Every nondeterministic-transition guard
    /// ([`FlatMachine::load_source`], [`FlatMachine::store_ready`],
    /// [`FlatMachine::rmw_ready`]) passes bound instances through with
    /// no effect (a bound store is `Propagated`/`Failed`, so it is never
    /// a forwarding source and satisfies every `need_done` arm; bound
    /// loads/RMWs/fences pass every `is_bound` arm; bound addresses
    /// always evaluate), so a retired prefix influences the future only
    /// through three channels, which the encoding keeps:
    ///
    /// * **register values** — `reg_value`/`eval_at`/`outcome` read the
    ///   nearest po-earlier writer via `written_reg`; the prefix
    ///   collapses to its final register map. User-visible registers
    ///   keep explicit zero entries (`outcome` reports a register iff
    ///   some instance wrote it); scratch registers drop value-0 entries
    ///   (`reg_value` falls back to 0 and `outcome` ignores them);
    /// * **the exclusive-pairing bank** — [`FlatMachine::stx_pairing`]
    ///   walks back to the first exclusive-relevant instance; once that
    ///   walk enters a bound prefix its answer is frozen (every arm is
    ///   final on bound instances), so the prefix collapses to that one
    ///   `Option<Timestamp>`;
    /// * **forwarded sources** — a bound load's `Src::Forward(k)` whose
    ///   source store has propagated at `ts` is observationally
    ///   `Src::Memory(ts)` (`stx_pairing` resolves both identically and
    ///   nothing else reads a bound load's source), so such sources are
    ///   canonicalised to the memory form and suffix-internal forward
    ///   indices are rebased.
    ///
    /// Two states with equal words are therefore bisimilar: equal
    /// suffixes, fetch state, register summaries, banks and per-location
    /// memory streams induce identical enabled transitions with
    /// identical effects, and equal outcomes on termination. This is
    /// what cracks the append-bound retry loops: a retired CAS-retry
    /// iteration leaves only its final register values behind, so
    /// executions that failed the same number of times against
    /// different (dead) old values of the contended word merge.
    pub fn canonical_words(&self) -> Vec<u64> {
        let mut out = Vec::new();
        self.canonical_words_into(&mut out);
        out
    }

    /// Stream the canonical encoding of [`FlatMachine::canonical_words`]
    /// into `out` without materialising a buffer — the dedup hot path
    /// sinks it straight into an [`FpHasher`], so fingerprinting a state
    /// under `Config::dpor` no longer allocates a per-state word vector.
    pub fn canonical_words_into<W: WordSink>(&self, out: &mut W) {
        // ts -> (loc+1, per-location index); ts 0 (the initial write,
        // distinguished) -> (0, 0).
        let mut next: BTreeMap<Loc, u64> = BTreeMap::new();
        let mut canon: Vec<(u64, u64)> = Vec::with_capacity(self.memory.len());
        let mut streams: BTreeMap<Loc, Vec<&Msg>> = BTreeMap::new();
        for (_, m) in self.memory.iter() {
            let idx = next.entry(m.loc).or_insert(0);
            canon.push((m.loc.0 + 1, *idx));
            *idx += 1;
            streams.entry(m.loc).or_default().push(m);
        }
        let canon_ts = |ts: Timestamp| -> (u64, u64) {
            if ts.is_initial() {
                (0, 0)
            } else {
                canon[ts.0 as usize - 1]
            }
        };
        let ts = |out: &mut W, t: Timestamp| {
            let (a, b) = canon_ts(t);
            out.word(a);
            out.word(b);
        };
        out.word(self.threads.len() as u64);
        for t in &self.threads {
            out.word(t.stuck as u64);
            out.word(t.fetch_fuel as u64);
            out.word(t.fetch_cont.len() as u64);
            for s in &t.fetch_cont {
                out.word(s.0 as u64);
            }
            // Maximal fully-bound prefix: collapsed to its final
            // register map and exclusive-pairing bank (see the doc
            // comment — bound instances are invisible to every
            // transition guard beyond those two channels).
            let live = t
                .instances
                .iter()
                .position(|i| !i.is_bound())
                .unwrap_or(t.instances.len());
            let mut regs: BTreeMap<Reg, Val> = BTreeMap::new();
            for inst in &t.instances[..live] {
                let written: Vec<Reg> = match &inst.op {
                    InstOp::Assign { reg, .. } | InstOp::Load { reg, .. } => vec![*reg],
                    InstOp::Store {
                        succ,
                        exclusive: true,
                        ..
                    } => vec![*succ],
                    InstOp::Rmw { dst, succ, .. } => vec![*dst, *succ],
                    _ => Vec::new(),
                };
                for r in written {
                    let v = inst
                        .written_reg(r)
                        .flatten()
                        .expect("bound instance has its register value");
                    regs.insert(r, v);
                }
            }
            // Scratch registers are invisible to `outcome` and read back
            // as 0 when unwritten, so value-0 entries are the unwritten
            // state; user registers must keep them (`outcome` reports a
            // register iff written).
            regs.retain(|r, v| r.0 < SCRATCH_REG_BASE || v.0 != 0);
            out.word(regs.len() as u64);
            for (r, v) in &regs {
                out.word(r.0 as u64);
                out.word(v.0 as u64);
            }
            // The prefix's exclusive-pairing bank: the answer
            // `stx_pairing` gives once its backward walk crosses into
            // the bound prefix (every arm is final there).
            let mut bank: Option<Timestamp> = None;
            for j in (0..live).rev() {
                let jinst = &t.instances[j];
                match &jinst.op {
                    InstOp::Store {
                        exclusive: true, ..
                    } => break, // interposed: bank stays empty
                    InstOp::Rmw { .. } => {
                        if let InstState::RmwDone {
                            tr, wrote: None, ..
                        } = jinst.state
                        {
                            bank = Some(tr);
                        }
                        break;
                    }
                    InstOp::Load {
                        exclusive: true, ..
                    } => {
                        if let InstState::Satisfied { src, .. } = jinst.state {
                            bank = match src {
                                Src::Memory(t) => Some(t),
                                Src::Forward(k) => match t.instances[k].state {
                                    InstState::Propagated { ts } => Some(ts),
                                    _ => None,
                                },
                            };
                        }
                        break;
                    }
                    _ => {}
                }
            }
            match bank {
                None => out.word(0),
                Some(t) => {
                    out.word(1);
                    ts(out, t);
                }
            }
            out.word((t.instances.len() - live) as u64);
            for inst in &t.instances[live..] {
                out.word(inst.stmt.0 as u64);
                match &inst.op {
                    InstOp::Assign { .. } => out.word(0),
                    InstOp::Load { .. } => out.word(1),
                    InstOp::Store { .. } => out.word(2),
                    InstOp::Fence(_) => out.word(3),
                    InstOp::Isb => out.word(4),
                    InstOp::Rmw { .. } => out.word(6),
                    InstOp::Branch {
                        guess, alt_cont, ..
                    } => {
                        out.word(5);
                        out.word(*guess as u64);
                        out.word(alt_cont.len() as u64);
                        for s in alt_cont {
                            out.word(s.0 as u64);
                        }
                    }
                }
                match inst.state {
                    InstState::Pending => out.word(0),
                    InstState::Done { val } => {
                        out.word(1);
                        out.word(val.0 as u64);
                    }
                    InstState::Satisfied { src, val } => {
                        out.word(2);
                        match src {
                            Src::Memory(t) => {
                                out.word(0);
                                ts(out, t);
                            }
                            // A forwarded source that has since
                            // propagated is observationally a memory
                            // source (`stx_pairing` resolves both to the
                            // same timestamp; nothing else reads a bound
                            // load's source) — canonicalise it so the
                            // distinction doesn't split states.
                            Src::Forward(k) => match t.instances[k].state {
                                InstState::Propagated { ts: pt } => {
                                    out.word(0);
                                    ts(out, pt);
                                }
                                _ => {
                                    debug_assert!(
                                        k >= live,
                                        "unpropagated forward source must be unbound"
                                    );
                                    out.word(1);
                                    out.word((k - live) as u64);
                                }
                            },
                        }
                        out.word(val.0 as u64);
                    }
                    InstState::Propagated { ts: t } => {
                        out.word(3);
                        ts(out, t);
                    }
                    InstState::Failed => out.word(4),
                    InstState::Committed => out.word(5),
                    InstState::Resolved { taken } => {
                        out.word(6);
                        out.word(taken as u64);
                    }
                    InstState::RmwDone { tr, old, wrote } => {
                        out.word(7);
                        ts(out, tr);
                        out.word(old.0 as u64);
                        match wrote {
                            None => out.word(0),
                            Some(t) => {
                                out.word(1);
                                ts(out, t);
                            }
                        }
                    }
                    InstState::RmwBound { tr, old } => {
                        out.word(8);
                        ts(out, tr);
                        out.word(old.0 as u64);
                    }
                }
            }
        }
        out.word(self.memory.init_values().len() as u64);
        for (l, v) in self.memory.init_values() {
            out.word(l.0);
            out.word(v.0 as u64);
        }
        out.word(streams.len() as u64);
        for (l, msgs) in &streams {
            out.word(l.0);
            out.word(msgs.len() as u64);
            for m in msgs {
                out.word(m.val.0 as u64);
                out.word(m.tid.0 as u64);
            }
        }
    }

    /// A 128-bit fingerprint of the dynamic state for visited-set
    /// deduplication (see [`promising_core::fingerprint`]).
    ///
    /// With the per-location dynamic POR layer on (`Config::dpor`), the
    /// fingerprint hashes the canonical word stream
    /// ([`FlatMachine::canonical_words`]) so bisimilar states merge;
    /// otherwise it hashes the raw state with absolute timestamps.
    ///
    /// Instance operations are functions of their source statement except
    /// for branches (speculation guess + squash continuation), so the
    /// encoding covers `(stmt, state)` per instance plus the branch
    /// extras — much cheaper than hashing the cloned expression trees.
    pub fn fingerprint(&self) -> Fingerprint {
        if self.config.por && self.config.dpor {
            let mut h = FpHasher::new();
            self.canonical_words_into(&mut h);
            return h.finish128();
        }
        let mut h = FpHasher::new();
        h.write_len(self.threads.len());
        for t in &self.threads {
            h.write_bool(t.stuck);
            h.write_u32(t.fetch_fuel);
            h.write_len(t.fetch_cont.len());
            for s in &t.fetch_cont {
                h.write_u32(s.0);
            }
            h.write_len(t.instances.len());
            for inst in &t.instances {
                h.write_u32(inst.stmt.0);
                match &inst.op {
                    InstOp::Assign { .. } => h.write_u64(0),
                    InstOp::Load { .. } => h.write_u64(1),
                    InstOp::Store { .. } => h.write_u64(2),
                    InstOp::Fence(_) => h.write_u64(3),
                    InstOp::Isb => h.write_u64(4),
                    InstOp::Rmw { .. } => h.write_u64(6),
                    InstOp::Branch {
                        guess, alt_cont, ..
                    } => {
                        h.write_u64(5);
                        h.write_bool(*guess);
                        h.write_len(alt_cont.len());
                        for s in alt_cont {
                            h.write_u32(s.0);
                        }
                    }
                }
                match inst.state {
                    InstState::Pending => h.write_u64(0),
                    InstState::Done { val } => {
                        h.write_u64(1);
                        h.write_i64(val.0);
                    }
                    InstState::Satisfied { src, val } => {
                        h.write_u64(2);
                        match src {
                            Src::Memory(ts) => {
                                h.write_u64(0);
                                h.write_u32(ts.0);
                            }
                            Src::Forward(idx) => {
                                h.write_u64(1);
                                h.write_len(idx);
                            }
                        }
                        h.write_i64(val.0);
                    }
                    InstState::Propagated { ts } => {
                        h.write_u64(3);
                        h.write_u32(ts.0);
                    }
                    InstState::Failed => h.write_u64(4),
                    InstState::Committed => h.write_u64(5),
                    InstState::Resolved { taken } => {
                        h.write_u64(6);
                        h.write_bool(taken);
                    }
                    InstState::RmwDone { tr, old, wrote } => {
                        h.write_u64(7);
                        h.write_u32(tr.0);
                        h.write_i64(old.0);
                        match wrote {
                            None => h.write_bool(false),
                            Some(ts) => {
                                h.write_bool(true);
                                h.write_u32(ts.0);
                            }
                        }
                    }
                    InstState::RmwBound { tr, old } => {
                        h.write_u64(8);
                        h.write_u32(tr.0);
                        h.write_i64(old.0);
                    }
                }
            }
        }
        self.memory.feed(&mut h);
        h.finish128()
    }

    /// Whether some thread exhausted the loop bound on a resolved path.
    pub fn any_stuck(&self) -> bool {
        self.threads.iter().any(|t| t.stuck)
    }

    /// All threads fully done: nothing to fetch, every instance bound.
    pub fn terminated(&self) -> bool {
        self.threads.iter().all(|t| {
            !t.stuck && t.fetch_cont.is_empty() && t.instances.iter().all(Instance::is_bound)
        })
    }

    /// The observable outcome of a terminated machine.
    ///
    /// # Panics
    ///
    /// Panics if the machine is not terminated.
    pub fn outcome(&self) -> promising_core::Outcome {
        assert!(self.terminated(), "outcome of a non-final Flat state");
        let regs = self
            .threads
            .iter()
            .map(|t| {
                let mut map: BTreeMap<Reg, Val> = BTreeMap::new();
                for inst in &t.instances {
                    let written: Vec<Reg> = match &inst.op {
                        InstOp::Assign { reg, .. } | InstOp::Load { reg, .. } => vec![*reg],
                        InstOp::Store {
                            succ,
                            exclusive: true,
                            ..
                        } => vec![*succ],
                        InstOp::Rmw { dst, succ, .. } => vec![*dst, *succ],
                        _ => Vec::new(),
                    };
                    for r in written {
                        if r.0 < SCRATCH_REG_BASE {
                            let v = inst
                                .written_reg(r)
                                .flatten()
                                .expect("bound instance has its value");
                            map.insert(r, v);
                        }
                    }
                }
                map
            })
            .collect();
        let memory = self
            .memory
            .locations()
            .into_iter()
            .map(|l| (l, self.memory.final_value(l)))
            .collect();
        promising_core::Outcome { regs, memory }
    }

    /// The value of register `r` as seen by the instance at `idx` (the
    /// nearest po-earlier writer), `None` if not yet available.
    fn reg_value(&self, tid: TId, idx: usize, r: Reg) -> Option<Val> {
        let t = &self.threads[tid.0];
        for inst in t.instances[..idx].iter().rev() {
            if let Some(v) = inst.written_reg(r) {
                return v;
            }
        }
        Some(Val(0))
    }

    /// Evaluate `e` at instance position `idx`, `None` if some input
    /// register is unavailable.
    fn eval_at(&self, tid: TId, idx: usize, e: &Expr) -> Option<Val> {
        match e {
            Expr::Const(v) => Some(*v),
            Expr::Reg(r) => self.reg_value(tid, idx, *r),
            Expr::Binop(op, a, b) => {
                let va = self.eval_at(tid, idx, a)?;
                let vb = self.eval_at(tid, idx, b)?;
                Some(op.apply(va, vb))
            }
        }
    }

    /// The resolved address of the memory access at `idx`, if available.
    fn addr_of(&self, tid: TId, idx: usize) -> Option<Loc> {
        let inst = &self.threads[tid.0].instances[idx];
        let addr = match &inst.op {
            InstOp::Load { addr, .. } | InstOp::Store { addr, .. } | InstOp::Rmw { addr, .. } => {
                addr
            }
            _ => return None,
        };
        self.eval_at(tid, idx, addr).map(Loc::from)
    }

    // ---- deterministic micro-steps (auto-drained) --------------------

    /// Run all deterministic steps to a fixpoint: fetch, assignment
    /// execution, branch resolution (with squash), fence/isb commit.
    fn drain(&mut self) {
        loop {
            let mut progressed = false;
            for tid in (0..self.threads.len()).map(TId) {
                progressed |= self.fetch_deterministic(tid);
                progressed |= self.execute_assigns(tid);
                progressed |= self.resolve_branches(tid);
                progressed |= self.commit_fences(tid);
            }
            if !progressed {
                break;
            }
        }
    }

    /// Fetch instructions as long as no unresolved-branch choice is needed.
    fn fetch_deterministic(&mut self, tid: TId) -> bool {
        let mut progressed = false;
        loop {
            let code = &self.program.threads()[tid.0];
            let t = &mut self.threads[tid.0];
            if t.stuck {
                return progressed;
            }
            // normalize seq/skip
            while let Some(&top) = t.fetch_cont.last() {
                match code.stmt(top) {
                    Stmt::Seq(a, b) => {
                        t.fetch_cont.pop();
                        let (a, b) = (*a, *b);
                        t.fetch_cont.push(b);
                        t.fetch_cont.push(a);
                    }
                    Stmt::Skip => {
                        t.fetch_cont.pop();
                    }
                    _ => break,
                }
            }
            let Some(&top) = t.fetch_cont.last() else {
                return progressed;
            };
            let idx = t.instances.len();
            match code.stmt(top).clone() {
                Stmt::Skip | Stmt::Seq(..) => unreachable!("normalized"),
                Stmt::Assign { reg, expr } => {
                    let t = &mut self.threads[tid.0];
                    t.fetch_cont.pop();
                    t.instances
                        .push(Instance::new(top, InstOp::Assign { reg, expr }));
                }
                Stmt::Load {
                    reg,
                    addr,
                    kind,
                    exclusive,
                } => {
                    let t = &mut self.threads[tid.0];
                    t.fetch_cont.pop();
                    t.instances.push(Instance::new(
                        top,
                        InstOp::Load {
                            reg,
                            addr,
                            rk: kind,
                            exclusive,
                        },
                    ));
                }
                Stmt::Store {
                    succ,
                    addr,
                    data,
                    kind,
                    exclusive,
                } => {
                    let t = &mut self.threads[tid.0];
                    t.fetch_cont.pop();
                    t.instances.push(Instance::new(
                        top,
                        InstOp::Store {
                            succ,
                            addr,
                            data,
                            wk: kind,
                            exclusive,
                        },
                    ));
                }
                Stmt::Rmw {
                    op,
                    dst,
                    succ,
                    addr,
                    expected,
                    operand,
                    rk,
                    wk,
                } => {
                    let t = &mut self.threads[tid.0];
                    t.fetch_cont.pop();
                    t.instances.push(Instance::new(
                        top,
                        InstOp::Rmw {
                            op,
                            dst,
                            succ,
                            addr,
                            expected,
                            operand,
                            rk,
                            wk,
                        },
                    ));
                }
                Stmt::Fence(f) => {
                    let t = &mut self.threads[tid.0];
                    t.fetch_cont.pop();
                    t.instances.push(Instance::new(top, InstOp::Fence(f)));
                }
                Stmt::Isb => {
                    let t = &mut self.threads[tid.0];
                    t.fetch_cont.pop();
                    t.instances.push(Instance::new(top, InstOp::Isb));
                }
                Stmt::If {
                    cond,
                    then_branch,
                    else_branch,
                } => {
                    // resolvable now? fetch the right path without a guess
                    match self.eval_at(tid, idx, &cond) {
                        Some(v) => {
                            let taken = v.as_bool();
                            let t = &mut self.threads[tid.0];
                            t.fetch_cont.pop();
                            t.fetch_cont
                                .push(if taken { then_branch } else { else_branch });
                            t.instances.push(Instance {
                                stmt: top,
                                op: InstOp::Branch {
                                    cond,
                                    guess: taken,
                                    alt_cont: Vec::new(),
                                },
                                state: InstState::Resolved { taken },
                            });
                        }
                        None => return progressed, // speculation choice needed
                    }
                }
                Stmt::While { cond, body } => match self.eval_at(tid, idx, &cond) {
                    Some(v) => {
                        let taken = v.as_bool();
                        let t = &mut self.threads[tid.0];
                        if taken {
                            if t.fetch_fuel == 0 {
                                t.stuck = true;
                                return progressed;
                            }
                            t.fetch_fuel -= 1;
                            t.fetch_cont.push(body);
                        } else {
                            t.fetch_cont.pop();
                        }
                        t.instances.push(Instance {
                            stmt: top,
                            op: InstOp::Branch {
                                cond,
                                guess: taken,
                                alt_cont: Vec::new(),
                            },
                            state: InstState::Resolved { taken },
                        });
                    }
                    None => return progressed,
                },
            }
            progressed = true;
        }
    }

    fn execute_assigns(&mut self, tid: TId) -> bool {
        let mut progressed = false;
        for idx in 0..self.threads[tid.0].instances.len() {
            let inst = &self.threads[tid.0].instances[idx];
            if let (InstOp::Assign { expr, .. }, InstState::Pending) =
                (&inst.op.clone(), inst.state)
            {
                if let Some(val) = self.eval_at(tid, idx, expr) {
                    self.threads[tid.0].instances[idx].state = InstState::Done { val };
                    progressed = true;
                }
            }
        }
        progressed
    }

    /// Resolve speculatively-fetched branches whose inputs are now
    /// available; squash on mis-speculation.
    fn resolve_branches(&mut self, tid: TId) -> bool {
        let mut progressed = false;
        let mut idx = 0;
        while idx < self.threads[tid.0].instances.len() {
            let inst = self.threads[tid.0].instances[idx].clone();
            if let (
                InstOp::Branch {
                    cond,
                    guess,
                    alt_cont,
                },
                InstState::Pending,
            ) = (&inst.op, inst.state)
            {
                if let Some(v) = self.eval_at(tid, idx, cond) {
                    let taken = v.as_bool();
                    let t = &mut self.threads[tid.0];
                    if taken == *guess {
                        t.instances[idx].state = InstState::Resolved { taken };
                    } else {
                        // mis-speculation: discard everything younger and
                        // refetch down the other path.
                        debug_assert!(
                            t.instances[idx + 1..].iter().all(|i| !matches!(
                                i.state,
                                InstState::Propagated { .. }
                                    | InstState::RmwDone { wrote: Some(_), .. }
                            )),
                            "speculative stores must never propagate"
                        );
                        t.instances.truncate(idx + 1);
                        t.fetch_cont = alt_cont.clone();
                        t.instances[idx].state = InstState::Resolved { taken };
                        t.instances[idx].op = InstOp::Branch {
                            cond: cond.clone(),
                            guess: taken,
                            alt_cont: Vec::new(),
                        };
                    }
                    progressed = true;
                }
            }
            idx += 1;
        }
        progressed
    }

    fn commit_fences(&mut self, tid: TId) -> bool {
        let mut progressed = false;
        for idx in 0..self.threads[tid.0].instances.len() {
            let inst = self.threads[tid.0].instances[idx].clone();
            if inst.state != InstState::Pending {
                continue;
            }
            let ready = match &inst.op {
                InstOp::Fence(f) => {
                    // The read pre-set is satisfied by an RMW's bound
                    // read half (`read_satisfied`); the write pre-set
                    // needs its write half landed (`is_bound`). For
                    // plain loads the two predicates coincide.
                    let t = &self.threads[tid.0];
                    t.instances[..idx].iter().all(|j| {
                        (!f.pre.includes_reads() || !j.is_load() || j.read_satisfied())
                            && (!f.pre.includes_writes() || !j.is_store() || j.is_bound())
                    })
                }
                InstOp::Isb => {
                    // all po-earlier branches resolved and access addresses
                    // determined (the ctrl/addr half-barriers of ρ7); an
                    // RMW's desugared loop exit is a branch on its success
                    // flag, so unbound RMWs block like unresolved branches
                    (0..idx).all(|j| {
                        let jinst = &self.threads[tid.0].instances[j];
                        match &jinst.op {
                            InstOp::Branch { .. } => jinst.is_bound(),
                            InstOp::Rmw { .. } => jinst.is_bound(),
                            InstOp::Load { .. } | InstOp::Store { .. } => {
                                self.addr_of(tid, j).is_some()
                            }
                            _ => true,
                        }
                    })
                }
                _ => continue,
            };
            if ready {
                self.threads[tid.0].instances[idx].state = InstState::Committed;
                progressed = true;
            }
        }
        progressed
    }

    // ---- nondeterministic transitions --------------------------------

    /// The satisfy-blocking scan for load `idx`: returns the permitted
    /// source, or `None` if blocked.
    fn load_source(&self, tid: TId, idx: usize) -> Option<(Src, Val)> {
        let t = &self.threads[tid.0];
        let inst = &t.instances[idx];
        let InstOp::Load { rk, .. } = &inst.op else {
            return None;
        };
        let loc = self.addr_of(tid, idx)?;

        // nearest po-earlier unpropagated same-address store (forwarding
        // candidate), and the blocking scan.
        let mut fwd: Option<usize> = None;
        for j in (0..idx).rev() {
            let jinst = &t.instances[j];
            match &jinst.op {
                InstOp::Load { rk: jrk, .. } => {
                    let jloc = self.addr_of(tid, j)?; // unresolved addr blocks
                    if *jrk >= ReadKind::WeakAcquire && !jinst.is_bound() {
                        return None; // acquire orders later reads
                    }
                    if jloc == loc && !jinst.is_bound() && fwd.is_none() {
                        return None; // same-address loads bind in order
                    }
                }
                InstOp::Store { wk, .. } => {
                    let jloc = self.addr_of(tid, j)?;
                    if *rk >= ReadKind::Acquire
                        && *wk >= WriteKind::Release
                        && !matches!(
                            jinst.state,
                            InstState::Propagated { .. } | InstState::Failed
                        )
                    {
                        return None; // [RL]; po; [AQ]
                    }
                    if jloc == loc && fwd.is_none() {
                        match jinst.state {
                            InstState::Propagated { .. } | InstState::Failed => {}
                            _ => {
                                // unpropagated same-address store: must
                                // forward from it (if data ready)
                                fwd = Some(j);
                            }
                        }
                    }
                }
                InstOp::Rmw {
                    rk: jrk, wk: jwk, ..
                } => {
                    // an RMW is both a read and a write for the blocking
                    // rules; it never forwards (conservative, like pending
                    // store exclusives). The acquire strength lives on the
                    // read half: once that is bound (`RmwBound`) po-later
                    // loads may satisfy — the axiomatic `rmw` edge runs
                    // read→write, so nothing orders a later load after the
                    // RMW's *write*.
                    let jloc = self.addr_of(tid, j)?;
                    if *jrk >= ReadKind::WeakAcquire && !jinst.read_satisfied() {
                        return None; // acquire read orders later reads
                    }
                    if *rk >= ReadKind::Acquire && *jwk >= WriteKind::Release && !jinst.is_bound() {
                        return None; // [RL]; po; [AQ]: needs the write half
                    }
                    if jloc == loc && !jinst.is_bound() && fwd.is_none() {
                        return None; // same-address accesses bind in order
                    }
                }
                InstOp::Fence(f) => {
                    if f.post.includes_reads() && !jinst.is_bound() {
                        return None;
                    }
                }
                InstOp::Isb => {
                    if !jinst.is_bound() {
                        return None;
                    }
                }
                InstOp::Branch { .. } | InstOp::Assign { .. } => {}
            }
        }

        match fwd {
            Some(j) => {
                let jinst = &t.instances[j];
                let InstOp::Store {
                    data, exclusive, ..
                } = &jinst.op
                else {
                    unreachable!("forward source is a store");
                };
                // A pending store exclusive may still fail, so its value
                // must never be forwarded (conservative vs ρ13 — see
                // DESIGN.md); the load waits for it to propagate or fail.
                if *exclusive {
                    return None;
                }
                let val = self.eval_at(tid, j, data)?;
                Some((Src::Forward(j), val))
            }
            None => {
                let ts = self
                    .memory
                    .latest_write_at_most(loc, self.memory.max_timestamp());
                let val = self.memory.read(loc, ts).expect("latest write reads back");
                Some((Src::Memory(ts), val))
            }
        }
    }

    /// The propagate-blocking scan for store `idx`: returns the value to
    /// write, or `None` if blocked. Does not check exclusivity success —
    /// see [`FlatMachine::stx_pairing`].
    fn store_ready(&self, tid: TId, idx: usize) -> Option<(Loc, Val)> {
        let t = &self.threads[tid.0];
        let inst = &t.instances[idx];
        let InstOp::Store { data, wk, .. } = &inst.op else {
            return None;
        };
        let loc = self.addr_of(tid, idx)?;
        let val = self.eval_at(tid, idx, data)?;
        for j in (0..idx).rev() {
            let jinst = &t.instances[j];
            match &jinst.op {
                InstOp::Branch { .. } => {
                    if !jinst.is_bound() {
                        return None; // no speculative writes
                    }
                }
                InstOp::Load { rk, .. } => {
                    let jloc = self.addr_of(tid, j)?; // address-po
                    let need_bound = jloc == loc
                        || *rk >= ReadKind::WeakAcquire
                        || *wk >= WriteKind::WeakRelease;
                    if need_bound && !jinst.is_bound() {
                        return None;
                    }
                }
                InstOp::Store { .. } => {
                    let jloc = self.addr_of(tid, j)?; // address-po
                    let need_done = jloc == loc || *wk >= WriteKind::WeakRelease;
                    if need_done
                        && !matches!(
                            jinst.state,
                            InstState::Propagated { .. } | InstState::Failed
                        )
                    {
                        return None;
                    }
                }
                InstOp::Rmw {
                    op: jop, rk: jrk, ..
                } => {
                    let jloc = self.addr_of(tid, j)?;
                    // Write-half edges — same-address ordering, release
                    // pre-views, and RISC-V's ρ12 (the success register
                    // feeds vCAP, and success is decided by the write) —
                    // need the RMW retired. Read-half edges — the acquire
                    // strength of the read (vwNew) and a CAS's compare
                    // guard feeding vCAP as a ctrl from the read — are
                    // discharged as soon as the read binds (`RmwBound`).
                    let need_done = jloc == loc
                        || *wk >= WriteKind::WeakRelease
                        || self.config.arch == Arch::RiscV;
                    if need_done && !jinst.is_bound() {
                        return None;
                    }
                    let need_read = *jrk >= ReadKind::WeakAcquire || *jop == RmwOp::Cas;
                    if need_read && !jinst.read_satisfied() {
                        return None;
                    }
                }
                InstOp::Fence(f) => {
                    if f.post.includes_writes() && !jinst.is_bound() {
                        return None;
                    }
                }
                InstOp::Isb | InstOp::Assign { .. } => {}
            }
        }
        Some((loc, val))
    }

    /// Evaluate `e` at instance position `idx` with register `dst` bound
    /// to `old` — the RMW's operand/expected expressions see the old
    /// value in the destination register, exactly as the promising and
    /// axiomatic models evaluate them after the read half.
    fn eval_at_with(&self, tid: TId, idx: usize, e: &Expr, dst: Reg, old: Val) -> Option<Val> {
        match e {
            Expr::Const(v) => Some(*v),
            Expr::Reg(r) if *r == dst => Some(old),
            Expr::Reg(r) => self.reg_value(tid, idx, *r),
            Expr::Binop(op, a, b) => {
                let va = self.eval_at_with(tid, idx, a, dst, old)?;
                let vb = self.eval_at_with(tid, idx, b, dst, old)?;
                Some(op.apply(va, vb))
            }
        }
    }

    /// The read-bind blocking scan for RMW instance `idx`: the
    /// load-satisfy conditions for a read of strength `rk`, with no
    /// forwarding (conservative, like pending store exclusives — every
    /// po-earlier same-address store must have propagated or failed).
    /// The bind may be speculative: unresolved branches do not block it
    /// (a squash truncates the bound read with no memory effect),
    /// matching the speculative load-exclusive of the desugared LL/SC
    /// build. The CAS `expected` input must resolve (the compare is
    /// decided at bind); the `operand` is only needed at propagate.
    /// Returns the target location, or `None` if blocked.
    fn rmw_bind_ready(&self, tid: TId, idx: usize) -> Option<Loc> {
        let t = &self.threads[tid.0];
        let inst = &t.instances[idx];
        let InstOp::Rmw {
            dst, expected, rk, ..
        } = &inst.op
        else {
            return None;
        };
        let loc = self.addr_of(tid, idx)?;
        if let Some(exp) = expected {
            // dst binds to the old value at bind time
            self.eval_at_with(tid, idx, exp, *dst, Val(0))?;
        }
        for j in (0..idx).rev() {
            let jinst = &t.instances[j];
            match &jinst.op {
                InstOp::Load { rk: jrk, .. } => {
                    let jloc = self.addr_of(tid, j)?;
                    if *jrk >= ReadKind::WeakAcquire && !jinst.is_bound() {
                        return None; // acquire orders later reads
                    }
                    if jloc == loc && !jinst.is_bound() {
                        return None; // same-address reads bind in order
                    }
                }
                InstOp::Store { wk: jwk, .. } => {
                    let jloc = self.addr_of(tid, j)?;
                    if *rk >= ReadKind::Acquire
                        && *jwk >= WriteKind::Release
                        && !matches!(
                            jinst.state,
                            InstState::Propagated { .. } | InstState::Failed
                        )
                    {
                        return None; // [RL]; po; [AQ]
                    }
                    if jloc == loc
                        && !matches!(
                            jinst.state,
                            InstState::Propagated { .. } | InstState::Failed
                        )
                    {
                        return None; // no forwarding into an RMW
                    }
                }
                InstOp::Rmw {
                    rk: jrk, wk: jwk, ..
                } => {
                    let jloc = self.addr_of(tid, j)?;
                    if *jrk >= ReadKind::WeakAcquire && !jinst.read_satisfied() {
                        return None; // acquire read orders later reads
                    }
                    if *rk >= ReadKind::Acquire && *jwk >= WriteKind::Release && !jinst.is_bound() {
                        return None; // [RL]; po; [AQ]: needs the write half
                    }
                    if jloc == loc && !jinst.is_bound() {
                        return None; // same-address accesses bind in order
                    }
                }
                InstOp::Fence(f) => {
                    if f.post.includes_reads() && !jinst.is_bound() {
                        return None;
                    }
                }
                InstOp::Isb => {
                    if !jinst.is_bound() {
                        return None;
                    }
                }
                InstOp::Branch { .. } | InstOp::Assign { .. } => {}
            }
        }
        Some(loc)
    }

    /// The write-propagate blocking scan for the bound RMW instance at
    /// `idx`: the store-propagate conditions for a write of strength
    /// `wk` (unresolved branches block — no speculative writes).
    /// Returns the target location and the updated value to append, or
    /// `None` if blocked. Does not check the exclusive-pairing
    /// invariant — the caller gates on [`Memory::atomic`] over the
    /// bound read timestamp; an interposed foreign write leaves the
    /// propagate permanently disabled (the pairing has failed, the
    /// machine cannot terminate down that branch, and any
    /// interposition-free interleaving remains reachable by binding
    /// later).
    fn rmw_propagate_ready(&self, tid: TId, idx: usize) -> Option<(Loc, Val)> {
        let t = &self.threads[tid.0];
        let inst = &t.instances[idx];
        let InstOp::Rmw {
            op,
            dst,
            operand,
            wk,
            ..
        } = &inst.op
        else {
            return None;
        };
        let InstState::RmwBound { old, .. } = inst.state else {
            return None;
        };
        let loc = self.addr_of(tid, idx)?;
        let opv = self.eval_at_with(tid, idx, operand, *dst, old)?;
        for j in (0..idx).rev() {
            let jinst = &t.instances[j];
            match &jinst.op {
                InstOp::Branch { .. } => {
                    if !jinst.is_bound() {
                        return None; // no speculative writes
                    }
                }
                InstOp::Load { rk: jrk, .. } => {
                    let jloc = self.addr_of(tid, j)?;
                    let need_bound = jloc == loc
                        || *jrk >= ReadKind::WeakAcquire
                        || *wk >= WriteKind::WeakRelease;
                    if need_bound && !jinst.is_bound() {
                        return None;
                    }
                }
                InstOp::Store { .. } => {
                    let jloc = self.addr_of(tid, j)?;
                    let need_done = jloc == loc || *wk >= WriteKind::WeakRelease;
                    if need_done
                        && !matches!(
                            jinst.state,
                            InstState::Propagated { .. } | InstState::Failed
                        )
                    {
                        return None;
                    }
                }
                InstOp::Rmw {
                    op: jop, rk: jrk, ..
                } => {
                    let jloc = self.addr_of(tid, j)?;
                    let need_done = jloc == loc
                        || *wk >= WriteKind::WeakRelease
                        || self.config.arch == Arch::RiscV;
                    if need_done && !jinst.is_bound() {
                        return None;
                    }
                    let need_read = *jrk >= ReadKind::WeakAcquire || *jop == RmwOp::Cas;
                    if need_read && !jinst.read_satisfied() {
                        return None;
                    }
                }
                InstOp::Fence(f) => {
                    if f.post.includes_writes() && !jinst.is_bound() {
                        return None;
                    }
                }
                InstOp::Isb | InstOp::Assign { .. } => {}
            }
        }
        Some((loc, op.apply(old, opv)))
    }

    /// Find the paired load exclusive for store exclusive `idx` (ρ11): the
    /// most recent po-earlier load exclusive with no interposing store
    /// exclusive. Returns its read timestamp if it is bound.
    fn stx_pairing(&self, tid: TId, idx: usize) -> Option<Timestamp> {
        let t = &self.threads[tid.0];
        for j in (0..idx).rev() {
            let jinst = &t.instances[j];
            match &jinst.op {
                InstOp::Store {
                    exclusive: true, ..
                } => return None, // interposed
                InstOp::Rmw { .. } => {
                    // a successful RMW consumes the pairing bank (like an
                    // interposed store exclusive); a CAS compare failure
                    // leaves its read charged in the bank. A bound-but-
                    // unpropagated RMW's fate is undecided: the walk
                    // answers `None` until its write half resolves.
                    return match jinst.state {
                        InstState::RmwDone {
                            tr, wrote: None, ..
                        } => Some(tr),
                        _ => None,
                    };
                }
                InstOp::Load {
                    exclusive: true, ..
                } => {
                    return match jinst.state {
                        InstState::Satisfied { src, .. } => match src {
                            Src::Memory(ts) => Some(ts),
                            Src::Forward(k) => match t.instances[k].state {
                                InstState::Propagated { ts } => Some(ts),
                                _ => None, // wait for the source to propagate
                            },
                        },
                        _ => None,
                    };
                }
                _ => {}
            }
        }
        None
    }

    // ---- partial-order-reduction metadata ----------------------------

    /// The resolved target location of the memory access instance at
    /// `idx` (load, store, or RMW), if its address is available — the
    /// location a `Satisfy`/`Propagate`/`BindRmw`/`PropagateRmw`
    /// transition on it touches. Used by the POR footprints.
    pub fn access_target(&self, tid: TId, idx: usize) -> Option<Loc> {
        self.addr_of(tid, idx)
    }

    /// Over-approximation of the locations thread `tid` may still
    /// *append* to from this state: resolved addresses of its unbound
    /// store/RMW instances (an unresolved address means
    /// [`MayAccess::Any`]), plus the static may-write sets of everything
    /// it can still fetch — the remaining fetch continuation and, for
    /// every unresolved branch, the alternative continuation a squash
    /// would refetch.
    pub fn thread_future_writes(&self, tid: TId) -> MayAccess {
        self.thread_future_accesses(tid, false)
    }

    /// Over-approximation of the locations thread `tid` may still *read*
    /// from this state (unbound loads/RMWs + fetchable code), in the same
    /// way as [`FlatMachine::thread_future_writes`].
    pub fn thread_future_reads(&self, tid: TId) -> MayAccess {
        self.thread_future_accesses(tid, true)
    }

    fn thread_future_accesses(&self, tid: TId, reads: bool) -> MayAccess {
        let t = &self.threads[tid.0];
        let code = &self.program.threads()[tid.0];
        let stmt_set = |id: StmtId| {
            if reads {
                code.may_read(id)
            } else {
                code.may_write(id)
            }
        };
        let mut out = MayAccess::none();
        for &id in &t.fetch_cont {
            out.absorb(stmt_set(id));
        }
        for (idx, inst) in t.instances.iter().enumerate() {
            if inst.is_bound() {
                continue;
            }
            let relevant = match &inst.op {
                InstOp::Load { .. } => reads,
                InstOp::Store { .. } => !reads,
                // A bound-but-unpropagated RMW is a pending *append* but
                // no longer a future read — its read half has already
                // bound. The DPOR persistent sets rely on the write side
                // staying conservative here.
                InstOp::Rmw { .. } => !reads || !inst.read_satisfied(),
                InstOp::Branch { alt_cont, .. } => {
                    // unresolved: a squash would refetch the other path
                    for &id in alt_cont {
                        out.absorb(stmt_set(id));
                    }
                    false
                }
                _ => false,
            };
            if relevant {
                match self.addr_of(tid, idx) {
                    Some(loc) => out.absorb(&MayAccess::Locs(BTreeSet::from([loc]))),
                    None => out = MayAccess::Any,
                }
            }
        }
        out
    }

    /// Enumerate the enabled nondeterministic transitions.
    pub fn enabled(&self) -> Vec<FlatTransition> {
        let mut out = Vec::new();
        for tid in (0..self.threads.len()).map(TId) {
            let t = &self.threads[tid.0];
            if t.stuck {
                continue;
            }
            // speculation choice at the fetch point?
            if let Some(&top) = t.fetch_cont.last() {
                let code = &self.program.threads()[tid.0];
                match code.stmt(top) {
                    Stmt::If { .. } => {
                        out.push(FlatTransition::FetchBranch { tid, taken: true });
                        out.push(FlatTransition::FetchBranch { tid, taken: false });
                    }
                    Stmt::While { .. } => {
                        if t.fetch_fuel > 0 {
                            out.push(FlatTransition::FetchBranch { tid, taken: true });
                        }
                        out.push(FlatTransition::FetchBranch { tid, taken: false });
                    }
                    _ => {}
                }
            }
            for idx in 0..t.instances.len() {
                let inst = &t.instances[idx];
                if let InstState::RmwBound { tr, .. } = inst.state {
                    // write-propagate of a bound RMW, gated by the
                    // exclusive-pairing invariant: no foreign write to
                    // the location may have landed since the bound read
                    // (if one has, the pairing failed and the propagate
                    // stays disabled).
                    if let Some((loc, _)) = self.rmw_propagate_ready(tid, idx) {
                        let fresh = Timestamp(self.memory.max_timestamp().0 + 1);
                        if self.memory.atomic(loc, tid, tr, fresh) {
                            out.push(FlatTransition::PropagateRmw { tid, idx });
                        }
                    }
                    continue;
                }
                if inst.state != InstState::Pending {
                    continue;
                }
                match &inst.op {
                    InstOp::Load { .. } if self.load_source(tid, idx).is_some() => {
                        out.push(FlatTransition::Satisfy { tid, idx });
                    }
                    InstOp::Rmw { .. } if self.rmw_bind_ready(tid, idx).is_some() => {
                        out.push(FlatTransition::BindRmw { tid, idx });
                    }
                    InstOp::Store { exclusive, .. } => {
                        if *exclusive {
                            out.push(FlatTransition::FailStx { tid, idx });
                        }
                        if self.store_ready(tid, idx).is_some() {
                            if *exclusive {
                                let fresh = Timestamp(self.memory.max_timestamp().0 + 1);
                                if let Some(tr) = self.stx_pairing(tid, idx) {
                                    if let Some((loc, _)) = self.store_ready(tid, idx) {
                                        if self.memory.atomic(loc, tid, tr, fresh) {
                                            out.push(FlatTransition::Propagate { tid, idx });
                                        }
                                    }
                                }
                            } else {
                                out.push(FlatTransition::Propagate { tid, idx });
                            }
                        }
                    }
                    _ => {}
                }
            }
        }
        out
    }

    /// Apply a transition (must be enabled) and auto-drain.
    ///
    /// # Panics
    ///
    /// Panics if the transition is not enabled in this state.
    pub fn apply(&mut self, tr: &FlatTransition) {
        match tr {
            FlatTransition::FetchBranch { tid, taken } => {
                let code = Arc::clone(&self.program);
                let code = &code.threads()[tid.0];
                let t = &mut self.threads[tid.0];
                let top = *t.fetch_cont.last().expect("fetch point exists");
                match code.stmt(top).clone() {
                    Stmt::If {
                        cond,
                        then_branch,
                        else_branch,
                    } => {
                        let mut alt = t.fetch_cont.clone();
                        alt.pop();
                        t.fetch_cont.pop();
                        if *taken {
                            alt.push(else_branch);
                            t.fetch_cont.push(then_branch);
                        } else {
                            alt.push(then_branch);
                            t.fetch_cont.push(else_branch);
                        }
                        t.instances.push(Instance::new(
                            top,
                            InstOp::Branch {
                                cond,
                                guess: *taken,
                                alt_cont: alt,
                            },
                        ));
                    }
                    Stmt::While { cond, body } => {
                        let mut alt = t.fetch_cont.clone();
                        if *taken {
                            alt.pop(); // alternative: exit the loop
                            t.fetch_fuel -= 1;
                            t.fetch_cont.push(body);
                        } else {
                            t.fetch_cont.pop(); // alternative: enter the loop
                            alt.push(body);
                        }
                        t.instances.push(Instance::new(
                            top,
                            InstOp::Branch {
                                cond,
                                guess: *taken,
                                alt_cont: alt,
                            },
                        ));
                    }
                    other => panic!("fetch point is not a branch: {other:?}"),
                }
            }
            FlatTransition::Satisfy { tid, idx } => {
                let (src, val) = self
                    .load_source(*tid, *idx)
                    .expect("satisfy transition enabled");
                self.threads[tid.0].instances[*idx].state = InstState::Satisfied { src, val };
            }
            FlatTransition::Propagate { tid, idx } => {
                let (loc, val) = self
                    .store_ready(*tid, *idx)
                    .expect("propagate transition enabled");
                let ts = self.memory.push(Msg::new(loc, val, *tid));
                self.threads[tid.0].instances[*idx].state = InstState::Propagated { ts };
            }
            FlatTransition::FailStx { tid, idx } => {
                self.threads[tid.0].instances[*idx].state = InstState::Failed;
            }
            FlatTransition::BindRmw { tid, idx } => {
                let loc = self
                    .rmw_bind_ready(*tid, *idx)
                    .expect("bind transition enabled");
                let inst = self.threads[tid.0].instances[*idx].clone();
                let InstOp::Rmw { dst, expected, .. } = &inst.op else {
                    unreachable!("rmw transition targets an rmw instance");
                };
                // bind the read half to the coherence-latest write; the
                // compare (CAS) is decided here, against the bound old
                // value — a failed compare degrades to a bare bound read
                // and retires immediately, nothing written.
                let tr = self
                    .memory
                    .latest_write_at_most(loc, self.memory.max_timestamp());
                let old = self.memory.read(loc, tr).expect("latest write reads back");
                let compare_failed = match expected {
                    None => false,
                    Some(exp) => {
                        let ev = self
                            .eval_at_with(*tid, *idx, exp, *dst, old)
                            .expect("rmw_bind_ready resolved the inputs");
                        old != ev
                    }
                };
                self.threads[tid.0].instances[*idx].state = if compare_failed {
                    InstState::RmwDone {
                        tr,
                        old,
                        wrote: None,
                    }
                } else {
                    InstState::RmwBound { tr, old }
                };
            }
            FlatTransition::PropagateRmw { tid, idx } => {
                let (loc, val) = self
                    .rmw_propagate_ready(*tid, *idx)
                    .expect("propagate transition enabled");
                let InstState::RmwBound { tr, old } = self.threads[tid.0].instances[*idx].state
                else {
                    unreachable!("rmw propagate targets a bound rmw");
                };
                // the enabledness gate checked `Memory::atomic(loc, tid,
                // tr, fresh)`, so the append lands adjacent to the bound
                // read in the location's stream — the pairing invariant.
                let tw = self.memory.push(Msg::new(loc, val, *tid));
                self.threads[tid.0].instances[*idx].state = InstState::RmwDone {
                    tr,
                    old,
                    wrote: Some(tw),
                };
            }
        }
        self.drain();
    }
}
