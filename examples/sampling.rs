//! Statistical exploration of the §8 workloads with the sampling
//! scheduler ([`Engine::sample`]): seeded random promise walks over the
//! promise-first search space.
//!
//! Exhaustive search is complete but blows up on the bigger workload
//! parameterisations (the "ooT" cells of Tables 2/3). Sampling trades
//! completeness for time while keeping two guarantees:
//!
//! * **soundness** — every sampled outcome is a real outcome (walks only
//!   take certified transitions), so a reported violation is a real bug;
//! * **determinism** — a fixed `(traces, seed)` pair reproduces the same
//!   outcome set exactly, regardless of worker count (as long as no
//!   budget bound cuts the run short).
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example sampling [-- SPEC [TRACES [SEED]]]
//! ```
//!
//! e.g. `cargo run --release --example sampling -- QU-100-010-000 512 7`.

use promising_core::{Arch, Machine};
use promising_explorer::{explore_promise_first_budget, Engine, PromiseFirstModel, SearchBudget};
use promising_workloads::{by_spec, init_for};
use std::time::Duration;

fn main() {
    let mut args = std::env::args().skip(1);
    let spec = args.next().unwrap_or_else(|| "QU-100-010-000".to_string());
    let traces: u64 = args.next().and_then(|a| a.parse().ok()).unwrap_or(256);
    let seed: u64 = args.next().and_then(|a| a.parse().ok()).unwrap_or(0);

    let w = by_spec(&spec).unwrap_or_else(|| panic!("unknown workload spec `{spec}`"));
    let machine = Machine::with_init(w.program.clone(), w.config(Arch::Arm), init_for(&w));
    let engine = Engine::new(PromiseFirstModel::new(&machine));

    println!("{spec}: {traces} random promise walks, seed {seed}");
    let sampled = engine.sample(traces, seed);
    let violations = w.violations(&sampled.outcomes);
    println!(
        "  sampled:    {} outcomes, {} final memories, {} walk steps, {:.2}s — {}",
        sampled.outcomes.len(),
        sampled.stats.final_memories,
        sampled.stats.states,
        sampled.stats.wall_time.as_secs_f64(),
        match violations.first() {
            Some(v) => format!("INCORRECT STATE: {v}"),
            None => "no incorrect state sampled".to_string(),
        }
    );

    // Determinism: the same seed reproduces the same outcome set.
    assert_eq!(engine.sample(traces, seed).outcomes, sampled.outcomes);
    println!("  determinism: same seed → identical outcome set ✓");

    // Soundness, checked against exhaustive search when it finishes in
    // time (on the big parameterisations it won't — that is the point).
    let budget = SearchBudget::deadline(Some(Duration::from_secs(10)));
    let exhaustive = explore_promise_first_budget(&machine, budget);
    if exhaustive.stats.truncated() {
        println!(
            "  exhaustive: ooT after 10s ({} states) — sampling is the only option here",
            exhaustive.stats.states
        );
    } else {
        assert!(
            sampled.outcomes.is_subset(&exhaustive.outcomes),
            "sampled outcomes must be a subset of exhaustive outcomes"
        );
        println!(
            "  exhaustive: {} outcomes in {:.2}s — sampled set is a subset ✓ ({}/{} covered)",
            exhaustive.outcomes.len(),
            exhaustive.stats.wall_time.as_secs_f64(),
            sampled.outcomes.len(),
            exhaustive.outcomes.len()
        );
    }
}
