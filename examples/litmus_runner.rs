//! Run any litmus test — from the built-in catalogue or a file in the
//! litmus format — under all three models and compare.
//!
//! Run with: `cargo run --release --example litmus_runner [NAME-or-FILE]`
//! e.g.      `cargo run --release --example litmus_runner MP+dmb.sy+addr`

use promising_litmus::{by_name, check_agreement, parse_litmus, ModelKind};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let arg = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "PPOCA".to_string());
    let test = if let Some(t) = by_name(&arg) {
        t
    } else {
        let src = std::fs::read_to_string(&arg)
            .map_err(|e| format!("`{arg}` is neither a catalogue test nor a readable file: {e}"))?;
        parse_litmus(&src)?
    };

    println!("{test}\n");
    let agreement = check_agreement(&test, &ModelKind::ALL)?;
    for run in &agreement.runs {
        let (holds, matches) = test.verdict(&run.outcomes);
        println!(
            "{:<16} {:>4} outcomes  {:>8.3}s  condition: {}{}",
            run.kind.name(),
            run.outcomes.len(),
            run.duration.as_secs_f64(),
            if holds {
                "observable"
            } else {
                "not observable"
            },
            match matches {
                Some(true) => "  (matches expectation)",
                Some(false) => "  (EXPECTATION MISMATCH!)",
                None => "",
            }
        );
    }
    println!(
        "\nmodels agree: {}{}",
        agreement.agree,
        agreement
            .mismatch
            .map(|m| format!("\nmismatch: {m}"))
            .unwrap_or_default()
    );
    Ok(())
}
