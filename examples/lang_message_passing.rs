//! Language-level message passing, written once and run on both
//! architectures: the writer publishes data with a release store, the
//! reader synchronises with an acquire load. The surface program carries
//! C11 orderings; `compile_arm` lowers the acquire load to an
//! LDAPR-strength access and the release store to `stlr`, while
//! `compile_riscv` brackets plain accesses with `fence r,rw` /
//! `fence rw,w` — and the two compiled programs have *identical* outcome
//! sets, with the stale read (`r1 = 1 ∧ r2 = 0`) forbidden on both.
//!
//! Run with: `cargo run --release --example lang_message_passing`

use promising_core::Arch;
use promising_litmus::{check_lang_conformance, parse_lang_litmus, ModelKind};

fn main() {
    let src = "\
LANG MP+rel+acq
store(data, 37, rlx)
store(flag, 1, rel)
---
r1 = load(flag, acq)
r2 = load(data, rlx)
exists (P1:r1=1 /\\ P1:r2=0)
expect forbidden
";
    let test = parse_lang_litmus(src).expect("parses");
    println!("surface program `{}`:\n{}", test.name, test.program);

    for arch in [Arch::Arm, Arch::RiscV] {
        let compiled = test.compile(arch);
        println!(
            "compiled for {}: {} instructions",
            arch.name(),
            compiled.program.instruction_count()
        );
    }

    let conformance = check_lang_conformance(&test, &ModelKind::ALL).expect("runs");
    for (arch, run) in &conformance.runs {
        println!(
            "  {:>5} / {:<16} {} outcomes, {} states",
            arch.name(),
            run.kind.name(),
            run.outcomes.len(),
            run.states
        );
    }
    assert!(conformance.agree, "{:?}", conformance.mismatch);
    println!("all engines and both architectures agree");

    // the weak outcome is forbidden everywhere
    for arch in [Arch::Arm, Arch::RiscV] {
        let v = promising_litmus::evaluate_lang(&test, arch, ModelKind::Promising).expect("runs");
        assert!(!v.holds && v.matches_expectation == Some(true));
        println!("{}: stale read unreachable (as expected)", arch.name());
    }
}
