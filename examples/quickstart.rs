//! Quickstart: define the message-passing (MP) litmus test, explore it
//! exhaustively under Promising-ARM, and print every allowed outcome —
//! then show that an address dependency forbids the weak one.
//!
//! Run with: `cargo run --example quickstart`

use promising_core::{parse_program, Config, Machine, Reg, Val};
use promising_explorer::explore;
use std::sync::Arc;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The MP shape of §4.1: a writer publishes x then y (ordered by a
    // dmb.sy), a reader reads y then x with no ordering.
    let (program, _) = parse_program(
        "store(x, 37)\n\
         dmb.sy\n\
         store(y, 42)\n\
         ---\n\
         r1 = load(y)\n\
         r2 = load(x)",
    )?;
    let machine = Machine::new(Arc::new(program), Config::arm());
    let result = explore(&machine);

    println!("MP+dmb.sy+po — allowed final states:");
    for outcome in &result.outcomes {
        println!("  {outcome}");
    }
    println!("search: {}", result.stats);

    let weak = result
        .outcomes
        .iter()
        .any(|o| o.reg(1, Reg(1)) == Val(42) && o.reg(1, Reg(2)) == Val(0));
    println!("\nweak outcome r1=42, r2=0 allowed? {weak} (ARM says yes!)");
    assert!(weak);

    // Adding an address dependency on the reader forbids it (§4.1).
    let (program, _) = parse_program(
        "store(x, 37)\n\
         dmb.sy\n\
         store(y, 42)\n\
         ---\n\
         r1 = load(y)\n\
         r2 = load(x + (r1 - r1))",
    )?;
    let machine = Machine::new(Arc::new(program), Config::arm());
    let result = explore(&machine);
    let weak = result
        .outcomes
        .iter()
        .any(|o| o.reg(1, Reg(1)) == Val(42) && o.reg(1, Reg(2)) == Val(0));
    println!("with an address dependency, allowed? {weak} (forbidden)");
    assert!(!weak);
    Ok(())
}
