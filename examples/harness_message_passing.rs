//! Message passing written as Rust closures: the writer publishes a
//! payload and releases a flag; the reader acquires the flag and reads
//! the payload. The harness records the closures into a surface-language
//! program (re-executing the reader once per candidate flag/payload
//! value to observe its control flow), compiles it for both ARM and
//! RISC-V, and explores it under all three operational strategies —
//! then weakens the orderings to show the stale read appearing.
//!
//! Run with: `cargo run --release --example harness_message_passing`

use promising_harness::{Arch, Environment, LogTest};
use std::sync::atomic::Ordering;

fn mp(store_ord: Ordering, load_ord: Ordering) -> LogTest {
    let mut lt = LogTest::named(format!("mp {store_ord:?}/{load_ord:?}"));
    lt.add(move |e: Environment| {
        e.a.store(42, Ordering::Relaxed); // payload
        e.b.store(1, store_ord); // flag
        0
    });
    lt.add(move |e: Environment| {
        if e.b.load(load_ord) == 1 {
            e.a.load(Ordering::Relaxed) // 42 with rel/acq; may be 0 relaxed
        } else {
            -1 // flag not seen
        }
    });
    lt
}

fn main() {
    // The release/acquire handoff: if the reader sees the flag, it sees
    // the payload — on both architectures, under every strategy.
    let strong = mp(Ordering::Release, Ordering::Acquire);
    let rec = strong.record().expect("records");
    println!("recorded program:\n{}", rec.program_text());

    let matrix = strong.matrix().expect("explores");
    for run in &matrix.runs {
        println!(
            "  {:>5} / {:<16} {} outcomes, {} states",
            run.arch.name(),
            run.model.name(),
            run.outcomes.len(),
            run.states
        );
    }
    strong.assert_outcomes(&[&[0, -1], &[0, 42]]);
    println!("rel/acq: stale read unreachable on both architectures\n");

    // Drop both orderings to relaxed and the stale read appears.
    let weak = mp(Ordering::Relaxed, Ordering::Relaxed);
    weak.assert_allowed(&[0, 0]);
    weak.assert_allowed(&[0, 42]);
    println!(
        "relaxed: outcomes {:?} — the stale read [0, 0] is allowed",
        weak.outcomes().expect("explores")
    );

    // Per-architecture queries exist for scheme-divergent shapes.
    for arch in [Arch::Arm, Arch::RiscV] {
        let o = weak.outcomes_on(arch).expect("explores");
        println!("  {}: {} outcomes", arch.name(), o.len());
    }
}
