//! The §8 case study: exhaustively check the Michael-Scott queue.
//!
//! 1. The conservative (acquire/release) build verifies correct.
//! 2. The §8 ARM optimisation (acquire loads weakened to plain loads
//!    where address dependencies give the ordering — unsound in C++!)
//!    also verifies correct under the hardware model.
//! 3. Weakening the *publication* CAS from release to relaxed is a real
//!    bug: the tool reports an incorrect state in which a dequeuer reads
//!    uninitialised data, exactly as the paper describes.
//!
//! Run with: `cargo run --release --example michael_scott`

use promising_core::{Arch, Machine};
use promising_explorer::explore;
use promising_workloads::{michael_scott, qu_init, Ops, Variant};

fn check(variant: Variant, label: &str) {
    let w = michael_scott(&[Ops(1, 0, 0), Ops(0, 1, 0)], variant);
    let machine = Machine::with_init(w.program.clone(), w.config(Arch::Arm), qu_init());
    let result = explore(&machine);
    let violations = w.violations(&result.outcomes);
    println!(
        "{label:<14} {} outcomes, {} final memories, {:.2}s — {}",
        result.outcomes.len(),
        result.stats.final_memories,
        result.stats.wall_time.as_secs_f64(),
        if violations.is_empty() {
            "no incorrect state".to_string()
        } else {
            format!("INCORRECT STATE: {}", violations[0])
        }
    );
}

fn main() {
    println!("Michael-Scott queue, one enqueuer vs one dequeuer:\n");
    check(Variant::Conservative, "conservative");
    check(Variant::Optimised, "optimised");
    check(Variant::Buggy, "buggy");
    println!("\nThe buggy variant drops the release ordering on the publication");
    println!("CAS, so the new node's next-pointer can become visible before its");
    println!("data — the dequeuer then reads 0. The fix (as in the paper): make");
    println!("the publish a release write; still unsound in C++, sound on ARM.");
}
