//! A CAS-based spinlock, exhaustively checked: two threads acquire the
//! lock with a single-instruction acquire CAS (ARMv8.1 `CASA` / RISC-V
//! `lr/sc` idiom collapsed to one transition), bump a shared counter, and
//! release with a store-release. Every complete execution must end with
//! counter = 2 — and the same program desugared to exclusive retry loops
//! explores strictly more states for the identical outcome set.
//!
//! Run with: `cargo run --release --example cas_lock`

use promising_core::stmt::desugar_program_rmws;
use promising_core::{parse_program, Config, Machine};
use promising_explorer::{explore_naive, CertMode};
use std::sync::Arc;

fn main() {
    let src = "\
r1 = 1                       // r1 != 0: still spinning
while (r1 != 0) { r1 = cas_acq(lock, 0, 1) }
r2 = load(counter)
store(counter, r2 + 1)
store_rel(lock, 0)
---
r1 = 1
while (r1 != 0) { r1 = cas_acq(lock, 0, 1) }
r2 = load(counter)
store(counter, r2 + 1)
store_rel(lock, 0)
";
    let (program, locs) = parse_program(src).expect("parses");
    let program = Arc::new(program);
    let counter = locs.get("counter").expect("interned");
    let config = Config::arm().with_loop_fuel(4);

    let rmw = explore_naive(
        &Machine::new(Arc::clone(&program), config.clone()),
        CertMode::Online,
    );
    println!(
        "CAS lock: {} outcomes, {} states explored",
        rmw.outcomes.len(),
        rmw.stats.states
    );
    for o in &rmw.outcomes {
        assert_eq!(o.loc(counter).0, 2, "mutual exclusion violated: {o}");
    }
    println!("every complete execution ends with counter = 2 ✓");

    // the same lock via LL/SC retry loops: same outcomes, more states
    let llsc = Arc::new(desugar_program_rmws(&program));
    let llsc_cfg = Config::arm().with_loop_fuel(6);
    let l = explore_naive(&Machine::new(llsc, llsc_cfg), CertMode::Online);
    assert_eq!(
        rmw.outcomes, l.outcomes,
        "desugaring must preserve outcomes"
    );
    println!(
        "LL/SC desugaring: same {} outcomes, {} states ({}x the CAS build)",
        l.outcomes.len(),
        l.stats.states,
        l.stats.states / rmw.stats.states.max(1)
    );
}
