//! Interactive exploration (§7/§8): step through a model-allowed execution
//! of the PPOCA shape, the classic "forwarding from a speculative store"
//! behaviour, printing thread states and the enabled certified transitions
//! at every step — the library equivalent of rmem's interactive mode.
//!
//! Run with: `cargo run --example interactive_debug`
//! Add `--interactive` to choose transitions yourself on stdin.

use promising_core::{parse_program, Config, Machine};
use promising_explorer::Session;
use std::io::Write as _;
use std::sync::Arc;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let (program, _) = parse_program(
        "store(x, 37)\n\
         dmb.sy\n\
         store(y, 42)\n\
         ---\n\
         r0 = load(y)\n\
         if (r0 == 42) {\n\
           store(z, 51)\n\
           r1 = load(z)\n\
           r2 = load(x + (r1 - r1))\n\
         }",
    )?;
    let machine = Machine::new(Arc::new(program), Config::arm());
    let mut session = Session::new(machine);
    let interactive = std::env::args().any(|a| a == "--interactive");

    println!("PPOCA under Promising-ARM — stepping through an execution\n");
    let mut step = 0;
    while !session.finished() && !session.dead_end() {
        let options = session.enabled_described();
        println!("state after {step} steps:");
        print!("{}", session.describe());
        println!("enabled transitions:");
        for (i, (_, desc)) in options.iter().enumerate() {
            println!("  [{i}] {desc}");
        }
        let choice = if interactive {
            print!("choice> ");
            std::io::stdout().flush()?;
            let mut line = String::new();
            std::io::stdin().read_line(&mut line)?;
            line.trim()
                .parse::<usize>()
                .unwrap_or(0)
                .min(options.len() - 1)
        } else {
            // scripted walk: drive towards the PPOCA outcome by taking the
            // first enabled transition of the *writer* until it finishes,
            // then the reader's most interesting (last-listed) choices.
            options
                .iter()
                .position(|(t, _)| t.tid.0 == 0)
                .unwrap_or(options.len() - 1)
        };
        let (transition, desc) = &options[choice];
        println!("-> taking {desc}\n");
        session.step(transition)?;
        step += 1;
        if step > 60 {
            break;
        }
    }
    println!("final state:\n{}", session.describe());
    println!(
        "trace length: {} steps (undo is available via Session::undo)",
        session.depth()
    );
    Ok(())
}
